// Package wire exercises allocbound: integers decoded off the wire must
// pass a bounds check before they reach an allocation sink. Marked lines
// must be flagged; everything else must stay clean.
package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"strconv"

	"flowmod/wirelimit"
)

const maxEntries = 1 << 10

var errTooBig = errors.New("wire: too big")

// header is a raw wire struct: no UnmarshalJSON, so decoding into it is a
// taint source.
type header struct {
	Rows    int    `json:"rows"`
	Entries int    `json:"entries"`
	Name    string `json:"name"`
}

// BadAlloc allocates straight off the wire.
func BadAlloc(data []byte) ([]int, error) {
	var h header
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, err
	}
	return make([]int, h.Rows), nil // want allocbound
}

// BadRepeat drives bytes.Repeat with an unchecked wire count.
func BadRepeat(data []byte) ([]byte, error) {
	var h header
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, err
	}
	return bytes.Repeat([]byte{0}, h.Entries), nil // want allocbound
}

// BadParse allocates from an unchecked strconv read.
func BadParse(s string) []int {
	n, _ := strconv.Atoi(s)
	return make([]int, n) // want allocbound
}

// parseCount is a summary demo: its result carries strconv taint to
// callers.
func parseCount(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

// BadViaHelper allocates with a count a helper parsed: the function
// summary propagates the taint interprocedurally.
func BadViaHelper(s string) []int {
	return make([]int, parseCount(s)) // want allocbound
}

// allocFor allocates on behalf of its callers, who own the bounds check.
// BadCallerTaint passes wire data in unchecked, so the sink inside this
// helper is flagged.
func allocFor(n int) []int {
	return make([]int, n) // want allocbound
}

// BadCallerTaint feeds an unchecked wire integer into allocFor.
func BadCallerTaint(data []byte) []int {
	var h header
	_ = json.Unmarshal(data, &h)
	return allocFor(h.Rows)
}

// transformer is satisfied by no module type: calls through it fall back
// to the conservative external rule (tainted argument taints the result).
type transformer interface {
	Transform(n int) int
}

// BadDynamic allocates from an opaque interface call fed tainted input.
func BadDynamic(tr transformer, s string) []int {
	n, _ := strconv.Atoi(s)
	return make([]int, tr.Transform(n)) // want allocbound
}

// GoodChecked launders the dimension through the wirelimit sanitizer.
func GoodChecked(data []byte) ([]int, error) {
	var h header
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, err
	}
	if err := wirelimit.CheckDim("rows", h.Rows); err != nil {
		return nil, err
	}
	return make([]int, h.Rows), nil
}

// GoodGuarded uses the upper-bound comparison idiom allocbound accepts.
func GoodGuarded(data []byte) ([]int, error) {
	var h header
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, err
	}
	if h.Entries > maxEntries {
		return nil, errTooBig
	}
	return make([]int, h.Entries), nil
}

// checked validates its own decode, so json.Unmarshal into it is a trust
// boundary, not a source.
type checked struct {
	Rows int `json:"rows"`
}

func (c *checked) UnmarshalJSON(b []byte) error {
	type raw checked
	var r raw
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	if err := wirelimit.CheckDim("rows", r.Rows); err != nil {
		return err
	}
	*c = checked(r)
	return nil
}

// GoodValidated decodes into a self-validating type.
func GoodValidated(data []byte) ([]int, error) {
	var c checked
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return make([]int, c.Rows), nil
}

// BadIgnored is a real finding suppressed with a reasoned //lint:ignore;
// the suppression must hold and must not be reported as stale.
func BadIgnored(data []byte) []byte {
	var h header
	_ = json.Unmarshal(data, &h)
	//lint:ignore allocbound exercised by the marker tests as a live suppression
	return bytes.Repeat([]byte{1}, h.Entries)
}

//lint:ignore gospawn nothing here spawns goroutines // want staleignore
var _ = maxEntries

package regress

import "encoding/json"

// tileWire mirrors the partition tile wire form before the embedded
// design's declared dimensions were capped ahead of allocation.
type tileWire struct {
	Name   string     `json:"name"`
	Design designWire `json:"design"`
}

type designWire struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// DecodeTile is the pre-fix tile decoder: the embedded design's declared
// extent drives a dense row-major allocation before any cap is applied.
func DecodeTile(data []byte) ([][]int8, error) {
	var w tileWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	if w.Design.Rows < 0 || w.Design.Cols < 0 {
		return nil, errNegative
	}
	cells := make([][]int8, w.Design.Rows) // want allocbound
	for i := range cells {
		cells[i] = make([]int8, w.Design.Cols) // want allocbound
	}
	return cells, nil
}

// Package regress pins the repo's two shipped OOM bugs as allocbound
// regression fixtures. Each file is a copy of a decoder as it looked
// before its fix — decoding into a plain struct, then allocating from the
// declared extent with at most a negativity check (which bounds nothing).
// allocbound must flag both allocations forever; if a refactor of the
// engine stops seeing them, these markers fail the build.
package regress

import (
	"encoding/json"
	"errors"
)

var errNegative = errors.New("regress: negative dimension")

// defectWire mirrors the defect.Map v1 wire header as decoded before the
// per-dimension caps were added: rows*cols drove a dense grid allocation.
type defectWire struct {
	V     int        `json:"v"`
	Rows  int        `json:"rows"`
	Cols  int        `json:"cols"`
	Cells []cellWire `json:"cells"`
}

type cellWire struct {
	R int    `json:"r"`
	C int    `json:"c"`
	K string `json:"k"`
}

// DecodeDefectMap is the pre-fix defect decoder: a few-byte body
// declaring 2^30 x 2^30 demands a dense grid the size of the product.
// The negativity check is the only guard it had.
func DecodeDefectMap(data []byte) ([]bool, int, error) {
	var w defectWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, 0, err
	}
	if w.Rows < 0 || w.Cols < 0 {
		return nil, 0, errNegative
	}
	grid := make([]bool, w.Rows*w.Cols) // want allocbound
	return grid, w.Cols, nil
}

package regress

import "encoding/json"

// design3DWire mirrors the layered (FLOW-3D) design wire header as a
// decoder would read it before the per-layer width caps: the declared
// widths slice drives one dense plane allocation per adjacent layer pair.
type design3DWire struct {
	V      int   `json:"v"`
	Widths []int `json:"widths"`
}

// DecodeDesign3D is the pre-fix layered decoder shape: each declared
// plane extent widths[d] x widths[d+1] is allocated densely with only a
// negativity check, so a few-byte body declaring two 2^30 layers demands
// a dense plane the size of the product.
func DecodeDesign3D(data []byte) ([][][]int8, error) {
	var w design3DWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	for _, width := range w.Widths {
		if width < 0 {
			return nil, errNegative
		}
	}
	planes := make([][][]int8, 0)
	for d := 0; d+1 < len(w.Widths); d++ {
		rows, cols := w.Widths[d], w.Widths[d+1]
		plane := make([][]int8, rows) // want allocbound
		for r := range plane {
			plane[r] = make([]int8, cols) // want allocbound
		}
		planes = append(planes, plane)
	}
	return planes, nil
}

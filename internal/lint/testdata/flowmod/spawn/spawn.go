// Package spawn exercises gospawn: every go statement must be tied to a
// lifecycle (WaitGroup, channel signal, or context).
package spawn

import (
	"context"
	"sync"
)

func work(n int) int { return n + 1 }

// BadFireAndForget spawns a goroutine nothing can observe.
func BadFireAndForget() {
	go func() { // want gospawn
		_ = work(1)
	}()
}

// GoodWaitGroup participates in a WaitGroup.
func GoodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work(2)
	}()
	wg.Wait()
}

// GoodChannel signals completion on a channel.
func GoodChannel() <-chan int {
	done := make(chan int, 1)
	go func() {
		done <- work(3)
	}()
	return done
}

// GoodCtx hands the goroutine a context.
func GoodCtx(ctx context.Context) {
	go runner(ctx)
}

func runner(ctx context.Context) {
	<-ctx.Done()
}

// GoodIndirect spawns a named module function whose body shows a
// lifecycle one call level down.
func GoodIndirect() {
	done := make(chan struct{})
	go closer(done)
	<-done
}

func closer(done chan struct{}) {
	defer close(done)
	_ = work(4)
}

// Package floatbad exercises every shape of exact float comparison the
// floatcmp analyzer must flag.
package floatbad

func eq(a, b float64) bool { return a == b } // want floatcmp

func ne(a, b float32) bool { return a != b } // want floatcmp

func mixed(a float64, b int) bool { return a == float64(b) } // want floatcmp

func viaName(x myFloat, y myFloat) bool { return x == y } // want floatcmp

type myFloat float64

var _ = eq
var _ = ne
var _ = mixed
var _ = viaName

// Package floatgood holds float handling the floatcmp analyzer must accept.
package floatgood

import "math"

const eps = 1e-9

func close(a, b float64) bool { return math.Abs(a-b) < eps }

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }

// Both operands are untyped constants: folded at compile time, exempt.
func consts() bool { return 0.5 == 1.0/2.0 }

//lint:ignore floatcmp deliberate exact-zero fast path, suppressed for the test
func zero(x float64) bool { return x == 0 }

var _ = close
var _ = ints
var _ = strs
var _ = consts
var _ = zero

// Package errdropgood holds error handling the errdrop analyzer must
// accept: checked errors, explicit discards, and infallible writers.
package errdropgood

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("x") }

func use() {
	if err := fail(); err != nil {
		_ = err
	}
	_ = fail() // explicit, visible discard

	fmt.Println("standard-stream printing is the stdlib's own idiom")
	fmt.Fprintln(os.Stderr, "so is this")
	fmt.Fprintf(os.Stdout, "and this\n")

	var sb strings.Builder
	fmt.Fprintf(&sb, "strings.Builder writes never fail")
	sb.WriteString("nor do its methods")

	var buf bytes.Buffer
	buf.WriteByte('z')
	fmt.Fprintln(&buf, "bytes.Buffer too")
}

var _ = use

// Package errdropbad exercises the statement shapes that silently discard
// a returned error.
package errdropbad

import (
	"errors"
	"fmt"
	"os"
)

func fail() error { return errors.New("x") }

func pair() (int, error) { return 0, errors.New("y") }

type closer struct{}

func (closer) Close() error { return nil }

func use() {
	fail()       // want errdrop
	pair()       // want errdrop
	defer fail() // want errdrop
	var c closer
	c.Close()                                           // want errdrop
	defer c.Close()                                     // want errdrop
	fmt.Fprintf(os.NewFile(3, "f"), "not a std stream") // want errdrop
}

var _ = use

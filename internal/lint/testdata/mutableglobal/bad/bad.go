// Package mutbad exercises runtime writes to package-level state.
package mutbad

var counter int

var table = map[string]int{}

var cfg = &config{}

var slice = make([]int, 4)

type config struct{ n int }

func bump() {
	counter++      // want mutableglobal
	counter = 5    // want mutableglobal
	table["k"] = 1 // want mutableglobal
	cfg.n = 2      // want mutableglobal
	slice[0] = 3   // want mutableglobal
}

var _ = bump

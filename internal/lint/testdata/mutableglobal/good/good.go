// Package mutgood holds package-level state usage the mutableglobal
// analyzer must accept: init-time writes, constants, reads, and locals.
package mutgood

const limit = 10

var defaultSize = 8 // written only during init

var lookup = map[string]int{"a": 1}

func init() {
	defaultSize = 16
	lookup["b"] = 2
}

func use() int {
	local := defaultSize + lookup["a"]
	local++
	shadow := lookup
	_ = shadow
	return local + limit
}

var _ = use

// Package ctxbad exercises exported solver entry points with no resource
// bound anywhere in their signatures.
package ctxbad

func SolveEverything(n int) int { return n } // want ctxbound

func FindWitness(name string) bool { return name != "" } // want ctxbound

func BuildClosure(xs []int) []int { return xs } // want ctxbound

type opts struct{ Verbose bool }

func SearchDeep(o opts) int { return 0 } // want ctxbound

// Package ctxgood holds solver entry points the ctxbound analyzer must
// accept: explicit limits, deadlines, option structs, non-solver names and
// unexported helpers.
package ctxgood

import "time"

// Opts carries a recognized bound field.
type Opts struct {
	TimeLimit time.Duration
	Verbose   bool
}

func SolveBounded(n, nodeLimit int) int { return n + nodeLimit }

func FindWithin(d time.Duration) bool { return d > 0 }

func SearchOpts(o Opts) int { return 0 }

func BuildUntil(deadline time.Time) int { return 0 }

func MaxIterCapped(maxIters int) int { return maxIters }

// Render is exported but has no solver prefix.
func Render(s string) string { return s }

// solve is unexported: entry-point rule does not apply.
func solve(n int) int { return n }

var _ = solve

// Package ctxgood holds solver entry points the ctxbound analyzer must
// accept: explicit limits, deadlines, option structs, non-solver names and
// unexported helpers.
package ctxgood

import (
	"context"
	"time"
)

// Opts carries a recognized bound field.
type Opts struct {
	TimeLimit time.Duration
	Verbose   bool
}

// CtxOpts carries a bound through a context-typed field.
type CtxOpts struct {
	Ctx     context.Context
	Verbose bool
}

// Deadline is an alias of a bound type; the analyzer must see through it.
type Deadline = time.Time

func SolveBounded(n, nodeLimit int) int { return n + nodeLimit }

func FindWithin(d time.Duration) bool { return d > 0 }

func SearchOpts(o Opts) int { return 0 }

func BuildUntil(deadline time.Time) int { return 0 }

func MaxIterCapped(maxIters int) int { return maxIters }

// SolveContext carries its budget through ctx (deadline/cancellation), the
// shape of the repo's context-aware solver entry points.
func SolveContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// FindConfigured receives a context via an options struct field.
func FindConfigured(o CtxOpts) int { return 0 }

// SearchUntilAlias bounds through an aliased time.Time.
func SearchUntilAlias(d Deadline) bool { return d.IsZero() }

// Render is exported but has no solver prefix.
func Render(s string) string { return s }

// solve is unexported: entry-point rule does not apply.
func solve(n int) int { return n }

var _ = solve

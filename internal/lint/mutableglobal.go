package lint

import (
	"go/ast"
	"go/types"
)

// Mutableglobal flags package-level variables that are written to outside
// package initialization (var initializers and init functions). A global
// mutated at runtime is shared state across every caller — exactly the kind
// of hidden coupling that breaks once Synthesize is called from multiple
// goroutines. Read-only lookup tables initialized at package init are fine
// and are not flagged.
//
// Writes counted: assignment (including op-assign), ++/--, and taking the
// variable as an explicit target of range/append re-assignment. Writes via
// an alias (pointer taken elsewhere) are out of scope; the analyzer is a
// tripwire, not an escape analysis. main packages are exempt (a CLI driver
// is single-threaded by construction).
func Mutableglobal() *Analyzer {
	return &Analyzer{
		Name: "mutableglobal",
		Doc:  "flags package-level variables written outside package initialization",
		Run:  runMutableglobal,
	}
}

func runMutableglobal(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			fnName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if v := globalTarget(info, lhs); v != nil {
							pass.Reportf(lhs.Pos(), "package-level variable %q is written in %s; package state breaks concurrent use", v.Name(), fnName)
						}
					}
				case *ast.IncDecStmt:
					if v := globalTarget(info, st.X); v != nil {
						pass.Reportf(st.X.Pos(), "package-level variable %q is written in %s; package state breaks concurrent use", v.Name(), fnName)
					}
				}
				return true
			})
		}
	}
}

// globalTarget resolves the root of an assignment target to a package-level
// variable object, or nil. Element writes (x[i] = …, x.f = …, *x = …) count
// as writes to the root variable.
func globalTarget(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			// Only follow selectors that name a variable's field, not
			// package-qualified identifiers (pkg.Var handled via Ident).
			if _, ok := info.Uses[e.Sel].(*types.Var); ok {
				if isPkgLevelVar(info, e.Sel) {
					return info.Uses[e.Sel].(*types.Var)
				}
			}
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && isPkgLevel(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func isPkgLevelVar(info *types.Info, id *ast.Ident) bool {
	v, ok := info.Uses[id].(*types.Var)
	return ok && isPkgLevel(v)
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	if v.Pkg() == nil || v.IsField() {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

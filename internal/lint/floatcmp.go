package lint

import (
	"go/ast"
	"go/token"
)

// Floatcmp flags exact == / != comparisons between floating-point values.
// Exact float equality is almost always a latent bug in the simplex /
// branch-and-bound / electrical code: two mathematically equal quantities
// computed along different paths differ in ulps, so exact comparisons make
// feasibility and optimality decisions non-deterministic. Compare against a
// tolerance instead, or suppress deliberate exact-zero fast paths with
// //lint:ignore floatcmp <reason>.
//
// Comparisons where both operands are compile-time constants are exempt
// (they are evaluated exactly, once).
func Floatcmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "flags exact ==/!= comparisons on floating-point operands",
		Run:  runFloatcmp,
	}
}

func runFloatcmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.Types[be.X], info.Types[be.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant expression, evaluated exactly
			}
			pass.Reportf(be.OpPos, "exact %s comparison on floating-point operands; use a tolerance (or suppress a deliberate exact-zero fast path)", be.Op)
			return true
		})
	}
}

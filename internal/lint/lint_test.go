package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadAndRun type-checks the testdata package at testdata/<sub> under the
// given import path and applies the analyzers.
func loadAndRun(t *testing.T, sub, path string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	prog, err := LoadDir(filepath.Join("testdata", sub), path)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", sub, err)
	}
	return RunAnalyzers(prog, analyzers)
}

// wantSet scans every .go file in dir for trailing "// want <analyzer>"
// markers and returns the expected findings as "file:analyzer:line" keys.
func wantSet(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, an := range strings.Fields(text[i+len("// want "):]) {
				want[fmt.Sprintf("%s:%s:%d", e.Name(), an, line)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// checkAgainstMarkers compares diagnostics to the // want markers in dir.
func checkAgainstMarkers(t *testing.T, sub string, diags []Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", sub)
	want := wantSet(t, dir)
	got := make(map[string]bool)
	for _, d := range diags {
		got[fmt.Sprintf("%s:%s:%d", filepath.Base(d.Pos.Filename), d.Analyzer, d.Pos.Line)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing expected finding %s", sub, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected finding %s", sub, k)
		}
	}
}

func TestFloatcmp(t *testing.T) {
	checkAgainstMarkers(t, "floatcmp/bad", loadAndRun(t, "floatcmp/bad", "floatbad", Floatcmp()))
	if diags := loadAndRun(t, "floatcmp/good", "floatgood", Floatcmp()); len(diags) != 0 {
		t.Errorf("floatcmp/good: want no findings, got %v", diags)
	}
}

func TestErrdrop(t *testing.T) {
	checkAgainstMarkers(t, "errdrop/bad", loadAndRun(t, "errdrop/bad", "errdropbad", Errdrop()))
	if diags := loadAndRun(t, "errdrop/good", "errdropgood", Errdrop()); len(diags) != 0 {
		t.Errorf("errdrop/good: want no findings, got %v", diags)
	}
}

func TestMutableglobal(t *testing.T) {
	checkAgainstMarkers(t, "mutableglobal/bad", loadAndRun(t, "mutableglobal/bad", "mutbad", Mutableglobal()))
	if diags := loadAndRun(t, "mutableglobal/good", "mutgood", Mutableglobal()); len(diags) != 0 {
		t.Errorf("mutableglobal/good: want no findings, got %v", diags)
	}
}

func TestCtxbound(t *testing.T) {
	checkAgainstMarkers(t, "ctxbound/bad", loadAndRun(t, "ctxbound/bad", "ctxbad", Ctxbound([]string{"ctxbad"})))
	if diags := loadAndRun(t, "ctxbound/good", "ctxgood", Ctxbound([]string{"ctxgood"})); len(diags) != 0 {
		t.Errorf("ctxbound/good: want no findings, got %v", diags)
	}
	// Out-of-scope packages are never flagged, whatever their signatures.
	if diags := loadAndRun(t, "ctxbound/bad", "ctxbad", Ctxbound([]string{"some/other/pkg"})); len(diags) != 0 {
		t.Errorf("ctxbound out of scope: want no findings, got %v", diags)
	}
}

func TestPanicfree(t *testing.T) {
	checkAgainstMarkers(t, "panicfree/bad", loadAndRun(t, "panicfree/bad", "panicbad", Panicfree("panicbad")))
	if diags := loadAndRun(t, "panicfree/good", "panicgood", Panicfree("panicgood")); len(diags) != 0 {
		t.Errorf("panicfree/good: want no findings, got %v", diags)
	}
}

func TestPanicfreeChainMentionsRoot(t *testing.T) {
	diags := loadAndRun(t, "panicfree/bad", "panicbad", Panicfree("panicbad"))
	var chain string
	for _, d := range diags {
		if strings.Contains(d.Message, "deeper") || strings.Contains(d.Message, "via ") {
			chain = d.Message
			break
		}
	}
	if !strings.Contains(chain, "panicbad.Do") {
		t.Errorf("panic report should name the API root in its call chain, got %q", chain)
	}
}

func TestMalformedDirective(t *testing.T) {
	diags := loadAndRun(t, "directive", "directive", Floatcmp())
	var sawMalformed, sawFloatcmp bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintdirective":
			sawMalformed = true
		case "floatcmp":
			sawFloatcmp = true
		}
	}
	if !sawMalformed {
		t.Errorf("malformed //lint:ignore (no reason) was not reported: %v", diags)
	}
	if !sawFloatcmp {
		t.Errorf("malformed directive must not suppress the underlying finding: %v", diags)
	}
}

func TestDefaultAnalyzers(t *testing.T) {
	as := DefaultAnalyzers("compact")
	names := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer with empty name or doc: %+v", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("%s: exactly one of Run/RunProgram must be set", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"floatcmp", "panicfree", "errdrop", "mutableglobal", "ctxbound"} {
		if !names[want] {
			t.Errorf("DefaultAnalyzers missing %q", want)
		}
	}
}

package lint

// staleignore keeps the suppression ledger honest: a //lint:ignore
// directive that no longer suppresses any finding is itself a finding, so
// fixed code sheds its suppressions instead of accumulating them. The
// logic lives in RunAnalyzers (it needs the post-filter directive usage
// state); this analyzer is the marker that opts a run into the check.
//
// A directive is reported only when every analyzer it names actually ran
// (so `compactlint -run floatcmp` cannot false-flag an errdrop
// suppression) and it names no wildcard.

// Staleignore returns the marker analyzer enabling the stale-directive
// check for a RunAnalyzers invocation.
func Staleignore() *Analyzer {
	return &Analyzer{
		Name:       "staleignore",
		Doc:        "//lint:ignore directives that suppress nothing must be deleted",
		RunProgram: func(*Pass) {}, // handled in RunAnalyzers post-filter
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// stdImporter returns the standard library importer. The "source" compiler
// mode type-checks GOROOT packages from source, so no pre-compiled export
// data is required — the only external ingredient is the Go toolchain's own
// source tree.
func stdImporter(fset *token.FileSet) types.ImporterFrom {
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// chainImporter resolves module-internal import paths from the already
// type-checked packages and delegates everything else (the standard
// library) to the source importer.
type chainImporter struct {
	modPath  string
	pkgs     map[string]*types.Package
	fallback types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		return nil, fmt.Errorf("lint: module package %q not loaded before its importer (import cycle?)", path)
	}
	return c.fallback.ImportFrom(path, dir, mode)
}

// parsedDir is one directory's worth of non-test Go files before type
// checking.
type parsedDir struct {
	dir     string
	path    string // import path
	name    string
	files   []*ast.File
	imports map[string]bool // module-internal imports only
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod). testdata,
// hidden and underscore-prefixed directories are skipped.
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []*parsedDir
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		pd, err := parseDir(fset, p, root, modPath)
		if err != nil {
			return err
		}
		if pd != nil {
			dirs = append(dirs, pd)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sorted, err := topoSort(dirs)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset, byPath: make(map[string]*Package)}
	chain := &chainImporter{
		modPath:  modPath,
		pkgs:     make(map[string]*types.Package),
		fallback: stdImporter(fset),
	}
	for _, pd := range sorted {
		pkg, err := check(fset, chain, pd)
		if err != nil {
			return nil, err
		}
		chain.pkgs[pd.path] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Imports are restricted to the standard library; used by the
// analyzer unit tests to load testdata packages.
func LoadDir(dir, path string) (*Program, error) {
	fset := token.NewFileSet()
	pd, err := parseDir(fset, dir, dir, path)
	if err != nil {
		return nil, err
	}
	if pd == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pd.path = path
	pkg, err := check(fset, stdImporter(fset), pd)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset, Pkgs: []*Package{pkg}, byPath: map[string]*Package{path: pkg}}
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// parseDir parses the non-test Go files directly inside dir. Returns nil if
// the directory holds no Go files.
func parseDir(fset *token.FileSet, dir, root, modPath string) (*parsedDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pd := &parsedDir{dir: dir, path: path, imports: make(map[string]bool)}
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pd.name == "" {
			pd.name = f.Name.Name
		} else if pd.name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: conflicting package names %q and %q", dir, pd.name, f.Name.Name)
		}
		pd.files = append(pd.files, f)
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				pd.imports[ip] = true
			}
		}
	}
	return pd, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(dirs []*parsedDir) ([]*parsedDir, error) {
	byPath := make(map[string]*parsedDir, len(dirs))
	for _, d := range dirs {
		byPath[d.path] = d
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int)
	var out []*parsedDir
	var visit func(d *parsedDir) error
	visit = func(d *parsedDir) error {
		switch state[d.path] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", d.path)
		case black:
			return nil
		}
		state[d.path] = gray
		deps := make([]string, 0, len(d.imports))
		for ip := range d.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[d.path] = black
		out = append(out, d)
		return nil
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].path < dirs[j].path })
	for _, d := range dirs {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// check type-checks one parsed package.
func check(fset *token.FileSet, imp types.Importer, pd *parsedDir) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pd.path, fset, pd.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pd.path, err)
	}
	return &Package{
		Path:  pd.path,
		Name:  pd.name,
		Dir:   pd.dir,
		Files: pd.files,
		Types: tpkg,
		Info:  info,
	}, nil
}

package lint

// allocbound is the analyzer behind the repo's twice-shipped OOM bug class:
// an integer decoded off the wire (a declared dimension or element count)
// drives an allocation before anything has bounded it, so a few-byte
// request body can demand a multi-terabyte make. It runs the compactflow
// taint engine with:
//
//	sources    json.Unmarshal / (*json.Decoder).Decode targets in the wire
//	           packages (unless the target type has its own in-module
//	           UnmarshalJSON — a validated decoder is a trust boundary),
//	           and strconv.Atoi/ParseInt/ParseUint results in the text
//	           parser packages
//	sanitizers wirelimit.CheckDim/CheckCount/CheckCells, plus the guard
//	           idiom `if n > cap { ... }` (an upper-bound comparison in an
//	           if condition whose other side is not the literal 0 — a
//	           plain `n < 0` check bounds nothing)
//	clean      invariant-preserving accessors (defect.Map.Rows/Cols/Len,
//	           whose constructor enforces MaxDim)
//	sinks      make's length/capacity arguments, bytes.Repeat and
//	           strings.Repeat counts

import (
	"go/ast"
	"go/types"
	"strings"
)

// Allocbound returns the analyzer for the module rooted at modPath.
// wirePkgs lists the packages whose decoders are taint sources; parsePkgs
// (a subset or disjoint set) additionally treats strconv reads as sources.
func Allocbound(modPath string, wirePkgs, parsePkgs []string) *Analyzer {
	return &Analyzer{
		Name: "allocbound",
		Doc:  "wire-decoded integers must pass a bounds check before reaching allocation sinks",
		RunProgram: func(pass *Pass) {
			runTaint(pass, allocboundConfig(modPath, wirePkgs, parsePkgs))
		},
	}
}

func allocboundConfig(modPath string, wirePkgs, parsePkgs []string) *taintConfig {
	return &taintConfig{
		sourceCall: func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (int, string, bool) {
			if callee == nil || callee.Pkg() == nil {
				return 0, "", false
			}
			switch {
			case calleeIs(callee, "encoding/json", "Unmarshal"):
				if pkgPathIn(ff.pkg.Path, wirePkgs) && len(call.Args) == 2 &&
					!targetHasModuleUnmarshal(ff, call.Args[1], modPath) {
					return 1, "a json.Unmarshal of wire data", true
				}
			case calleeIs(callee, "encoding/json", "Decoder.Decode"):
				if pkgPathIn(ff.pkg.Path, wirePkgs) && len(call.Args) == 1 &&
					!targetHasModuleUnmarshal(ff, call.Args[0], modPath) {
					return 0, "a json decode of wire data", true
				}
			case callee.Pkg().Path() == "strconv":
				switch callee.Name() {
				case "Atoi", "ParseInt", "ParseUint":
					if pkgPathIn(ff.pkg.Path, parsePkgs) {
						return -1, "a parsed " + callee.Name() + " field", true
					}
				}
			}
			return 0, "", false
		},
		sanitizer: func(callee *types.Func) bool {
			if callee.Pkg() == nil {
				return false
			}
			if strings.HasSuffix(callee.Pkg().Path(), "wirelimit") {
				return strings.HasPrefix(callee.Name(), "Check")
			}
			// Module validators that bound their arguments through
			// wirelimit internally.
			return calleeIs(callee, modPath+"/internal/partition", "validatePerm")
		},
		clean: func(callee *types.Func) bool {
			// defect.Map dimensions are constructor-bounded by MaxDim, so
			// reading them back off a decoded map yields clean values.
			p := modPath + "/internal/defect"
			return calleeIs(callee, p, "Map.Rows") ||
				calleeIs(callee, p, "Map.Cols") ||
				calleeIs(callee, p, "Map.Len")
		},
		boundComparisonSanitizes: true,
		carries: func(t types.Type) bool {
			return carriesSize(t, modPath, make(map[types.Type]bool))
		},
		sinkArgs: func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (string, []int) {
			if isBuiltin(ff.pkg.Info, call, "make") {
				switch len(call.Args) {
				case 2:
					return "make", []int{1}
				case 3:
					return "make", []int{1, 2}
				}
				return "", nil
			}
			if calleeIs(callee, "bytes", "Repeat") || calleeIs(callee, "strings", "Repeat") {
				return funcDisplayName(callee), []int{1}
			}
			return "", nil
		},
	}
}

// carriesSize reports whether a value of type t can transport
// attacker-controlled size taint to an allocation sink:
//
//   - a type whose decode is validated (it declares UnmarshalJSON inside
//     the module) is a trust boundary and never carries;
//   - signed integers carry — every wire size in this module is a signed
//     int, while unsigned integers are entropy (seeds, hashes, digests);
//   - bools, floats, strings, funcs and interfaces cannot become an
//     allocation length;
//   - aggregates carry iff something inside them does.
func carriesSize(t types.Type, modPath string, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if hasModuleUnmarshal(t, modPath) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		return info&types.IsInteger != 0 && info&types.IsUnsigned == 0
	case *types.Slice:
		return carriesSize(u.Elem(), modPath, seen)
	case *types.Array:
		return carriesSize(u.Elem(), modPath, seen)
	case *types.Map:
		return carriesSize(u.Key(), modPath, seen) || carriesSize(u.Elem(), modPath, seen)
	case *types.Pointer:
		return carriesSize(u.Elem(), modPath, seen)
	case *types.Chan:
		return carriesSize(u.Elem(), modPath, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesSize(u.Field(i).Type(), modPath, seen) {
				return true
			}
		}
		return false
	case *types.Interface, *types.Signature:
		return false
	}
	return true
}

// targetHasModuleUnmarshal applies hasModuleUnmarshal to the static type
// of a decode target expression.
func targetHasModuleUnmarshal(ff *flowFunc, target ast.Expr, modPath string) bool {
	tv, ok := ff.pkg.Info.Types[target]
	if !ok || tv.Type == nil {
		return false
	}
	return hasModuleUnmarshal(tv.Type, modPath)
}

// hasModuleUnmarshal reports whether t (through pointers) declares an
// UnmarshalJSON method inside the module — such decoders validate their
// own input, so values of the type are trusted and json.Unmarshal targets
// of the type are not sources.
func hasModuleUnmarshal(t types.Type, modPath string) bool {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if _, ok := types.Unalias(t).(*types.Named); !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	sel := ms.Lookup(nil, "UnmarshalJSON")
	if sel == nil {
		return false
	}
	fn, ok := sel.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), modPath)
}

package lint

// flow.go is compactflow, the interprocedural dataflow layer the taint
// analyzers (allocbound, ctxflow) and the reachability analyzers
// (panicfree, gospawn) share. It has two parts:
//
//  1. A whole-module call graph (flowGraph) over every declared function:
//     static call edges, conservative interface-dispatch edges (a call
//     through an interface method fans out to every module type that
//     implements the interface), and reference edges (taking a function or
//     method value is treated as a potential call, since the engine does
//     not track where the value flows).
//
//  2. A context-insensitive interprocedural taint engine (runTaint):
//     per-function forward transfer on AST values with one-level field
//     sensitivity, function summaries (which results are tainted given
//     which tainted parameters), and a worklist that propagates taint from
//     call arguments into callee parameters and from callee results back
//     into callers until a fixed point. Sources, sanitizers and sinks are
//     supplied per analyzer through taintConfig.
//
// Soundness caveats (deliberate, documented in DESIGN.md §11): the
// transfer is flow-insensitive within a function (a sanitizer anywhere in
// the function launders the value everywhere in it), taint through global
// variables and through channel payloads is not tracked, and external
// (non-module) callees are handled conservatively: any tainted argument
// taints every result unless the config declares the callee clean.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Call graph

// flowEdge is one resolved call or function-value reference.
type flowEdge struct {
	pos     token.Pos
	call    *ast.CallExpr // nil for bare function/method value references
	callee  *types.Func
	dynamic bool // resolved through interface dispatch or a value reference
}

// flowFunc is one declared function or method with a body.
type flowFunc struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	edges   []flowEdge
	panics  []token.Pos // panic() call sites in the body
	callers []*flowFunc
}

// flowGraph is the whole-module call graph compactflow analyses run on.
type flowGraph struct {
	prog  *Program
	funcs map[*types.Func]*flowFunc
	order []*flowFunc // deterministic: package load order, then position
	// impls maps an interface method to the module methods that may
	// implement it (conservative dispatch fan-out).
	impls map[*types.Func][]*types.Func
}

// flow returns the program's call graph, building it on first use so the
// analyzers that share a Program share one graph.
func (p *Program) flow() *flowGraph {
	if p.flowG == nil {
		p.flowG = buildFlowGraph(p)
	}
	return p.flowG
}

func buildFlowGraph(prog *Program) *flowGraph {
	g := &flowGraph{
		prog:  prog,
		funcs: make(map[*types.Func]*flowFunc),
		impls: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &flowFunc{fn: fn, decl: fd, pkg: pkg}
				g.funcs[fn] = ff
				g.order = append(g.order, ff)
			}
		}
	}
	g.buildImplements()
	for _, ff := range g.order {
		g.addEdges(ff)
	}
	// Reverse edges, deduplicated.
	for _, ff := range g.order {
		seen := make(map[*flowFunc]bool)
		for _, e := range ff.edges {
			for _, callee := range g.resolve(e) {
				if !seen[callee] {
					seen[callee] = true
					callee.callers = append(callee.callers, ff)
				}
			}
		}
	}
	return g
}

// buildImplements records, for every interface method declared in a module
// package, the module methods that may satisfy it.
func (g *flowGraph) buildImplements() {
	var ifaces []*types.Named
	var concrete []*types.Named
	for _, pkg := range g.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, iface := range ifaces {
		it, ok := iface.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, t := range concrete {
			pt := types.NewPointer(t)
			if !types.Implements(t, it) && !types.Implements(pt, it) {
				continue
			}
			ms := types.NewMethodSet(pt)
			for i := 0; i < it.NumMethods(); i++ {
				im := it.Method(i)
				sel := ms.Lookup(t.Obj().Pkg(), im.Name())
				if sel == nil {
					continue
				}
				if m, ok := sel.Obj().(*types.Func); ok {
					if _, declared := g.funcs[m]; declared {
						g.impls[im] = append(g.impls[im], m)
					}
				}
			}
		}
	}
}

// addEdges records call, panic and reference edges for one function.
func (g *flowGraph) addEdges(ff *flowFunc) {
	info := ff.pkg.Info
	// Identifiers appearing in call position, so the reference pass can
	// skip them.
	inCallPos := make(map[*ast.Ident]bool)
	ast.Inspect(ff.decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			inCallPos[fun] = true
		case *ast.SelectorExpr:
			inCallPos[fun.Sel] = true
		}
		if isBuiltin(info, call, "panic") {
			ff.panics = append(ff.panics, call.Pos())
			return true
		}
		if callee := calleeFunc(info, call); callee != nil {
			ff.edges = append(ff.edges, flowEdge{
				pos:     call.Pos(),
				call:    call,
				callee:  callee,
				dynamic: isInterfaceMethod(callee),
			})
		}
		return true
	})
	// Function and method values taken outside call position are treated
	// as potential calls (the engine does not track where they flow).
	ast.Inspect(ff.decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || inCallPos[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			if _, declared := g.funcs[fn]; declared || isInterfaceMethod(fn) {
				ff.edges = append(ff.edges, flowEdge{
					pos:     id.Pos(),
					callee:  fn,
					dynamic: true,
				})
			}
		}
		return true
	})
}

// resolve expands an edge to the module functions it may reach: the static
// callee when declared in the module, or the conservative implementer set
// for interface methods.
func (g *flowGraph) resolve(e flowEdge) []*flowFunc {
	if ff, ok := g.funcs[e.callee]; ok {
		return []*flowFunc{ff}
	}
	if impls := g.impls[e.callee]; len(impls) > 0 {
		out := make([]*flowFunc, 0, len(impls))
		for _, m := range impls {
			if ff, ok := g.funcs[m]; ok {
				out = append(out, ff)
			}
		}
		return out
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// ---------------------------------------------------------------------------
// Taint engine

var taintDebug = "" // set temporarily to a function name to trace propagation

// taintSource records where a tainted value originated.
type taintSource struct {
	pos  token.Pos
	desc string
}

// taintKey identifies a tainted value: a variable, optionally narrowed to
// one named field (one level of field sensitivity).
type taintKey struct {
	obj   types.Object
	field string
}

// taintConfig parameterizes one interprocedural taint analysis.
type taintConfig struct {
	// sourceCall classifies call sites that originate taint. which >= 0
	// taints the object the argument at that index points to (through a
	// leading &); which == -1 taints the call's results.
	sourceCall func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (which int, desc string, ok bool)
	// sanitizer reports functions that validate their arguments: a call to
	// one launders every argument key passed to it, and its results are
	// clean.
	sanitizer func(callee *types.Func) bool
	// clean reports functions whose results are trustworthy even when
	// their arguments or receiver are tainted (invariant-preserving
	// accessors such as defect.Map.Rows).
	clean func(callee *types.Func) bool
	// boundComparisonSanitizes launders the left operand of a magnitude
	// comparison (k < e, k <= e, k > e, k >= e) appearing in an if
	// condition, unless the right operand is the literal 0 (a
	// non-negativity test bounds nothing). This is the recognizer for the
	// guard idiom `if n > cap { return err }`.
	boundComparisonSanitizes bool
	// carries filters which static types can transport taint; nil means
	// every type carries.
	carries func(t types.Type) bool
	// sinkArgs returns the indices of the call's arguments that must not
	// receive tainted values, with a short description of the sink.
	sinkArgs func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (desc string, args []int)
	// message renders the diagnostic for one sink hit.
	message func(sinkDesc, srcDesc string, srcPos token.Position) string
}

// funcTaint is the per-function analysis state.
type funcTaint struct {
	ff        *flowFunc
	params    []*taintSource // incoming taint per slot (slot 0 = receiver when present)
	results   []*taintSource
	tainted   map[taintKey]*taintSource
	sanitized map[taintKey]bool
}

// sinkHit is one tainted value reaching a sink argument.
type sinkHit struct {
	pos  token.Position
	desc string
	src  taintSource
}

type taintState struct {
	g      *flowGraph
	cfg    *taintConfig
	fstate map[*types.Func]*funcTaint
	hits   map[string]sinkHit
	work   []*flowFunc
	queued map[*flowFunc]bool
}

// newTaintState prepares a taint analysis over prog.
func newTaintState(prog *Program, cfg *taintConfig) *taintState {
	return &taintState{
		g:      prog.flow(),
		cfg:    cfg,
		fstate: make(map[*types.Func]*funcTaint),
		hits:   make(map[string]sinkHit),
		queued: make(map[*flowFunc]bool),
	}
}

// run drives the worklist to the interprocedural fixed point.
func (st *taintState) run() {
	for _, ff := range st.g.order {
		st.enqueue(ff)
	}
	for len(st.work) > 0 {
		ff := st.work[0]
		st.work = st.work[1:]
		st.queued[ff] = false
		st.analyze(ff)
	}
}

// runTaint runs the configured taint analysis over the whole program and
// reports every sink hit through pass.
func runTaint(pass *Pass, cfg *taintConfig) {
	st := newTaintState(pass.Prog, cfg)
	st.run()
	g := st.g
	keys := make([]string, 0, len(st.hits))
	for k := range st.hits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := st.hits[k]
		srcPos := g.prog.Fset.Position(h.src.pos)
		msg := fmt.Sprintf("%s receives %s (origin %s:%d) without a bounds check",
			h.desc, h.src.desc, relBase(srcPos.Filename), srcPos.Line)
		if cfg.message != nil {
			msg = cfg.message(h.desc, h.src.desc, srcPos)
		}
		*pass.diags = append(*pass.diags, Diagnostic{
			Pos:      h.pos,
			Analyzer: pass.analyzer,
			Message:  msg,
		})
	}
}

// relBase trims a path to its final element for compact diagnostics.
func relBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func (st *taintState) enqueue(ff *flowFunc) {
	if ff == nil || st.queued[ff] {
		return
	}
	st.queued[ff] = true
	st.work = append(st.work, ff)
}

// state returns (building on first use) the analysis state for ff.
func (st *taintState) state(ff *flowFunc) *funcTaint {
	fs, ok := st.fstate[ff.fn]
	if !ok {
		sig := ff.fn.Type().(*types.Signature)
		nslots := sig.Params().Len()
		if sig.Recv() != nil {
			nslots++
		}
		fs = &funcTaint{
			ff:        ff,
			params:    make([]*taintSource, nslots),
			results:   make([]*taintSource, sig.Results().Len()),
			tainted:   make(map[taintKey]*taintSource),
			sanitized: collectSanitized(st.cfg, ff),
		}
		st.fstate[ff.fn] = fs
	}
	return fs
}

// slotVar returns the parameter object for a slot (receiver first).
func slotVar(fn *types.Func, slot int) *types.Var {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if slot == 0 {
			return sig.Recv()
		}
		slot--
	}
	if slot < sig.Params().Len() {
		return sig.Params().At(slot)
	}
	return nil
}

// markParam taints a callee's parameter slot, re-queueing the callee when
// this is new information.
func (st *taintState) markParam(ff *flowFunc, slot int, src *taintSource) {
	fs := st.state(ff)
	if slot < 0 || slot >= len(fs.params) || fs.params[slot] != nil {
		return
	}
	fs.params[slot] = src
	st.enqueue(ff)
}

// markResult taints a function's result slot, re-queueing its callers when
// this is new information.
func (st *taintState) markResult(fs *funcTaint, i int, src *taintSource) {
	if src == nil || i < 0 || i >= len(fs.results) || fs.results[i] != nil {
		return
	}
	fs.results[i] = src
	for _, caller := range fs.ff.callers {
		st.enqueue(caller)
	}
}

// analyze runs the per-function transfer to a local fixed point.
func (st *taintState) analyze(ff *flowFunc) {
	fs := st.state(ff)
	// Seed parameter taint.
	for slot, src := range fs.params {
		if src == nil {
			continue
		}
		if v := slotVar(ff.fn, slot); v != nil {
			k := taintKey{obj: v}
			if fs.tainted[k] == nil {
				fs.tainted[k] = src
			}
		}
	}
	for {
		before := len(fs.tainted)
		st.scanBody(fs)
		if len(fs.tainted) == before {
			return
		}
	}
}

// scanBody performs one flow-insensitive pass over the function body.
func (st *taintState) scanBody(fs *funcTaint) {
	ff := fs.ff
	info := ff.pkg.Info
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			st.transferAssign(fs, s)
		case *ast.ValueSpec:
			for i, name := range s.Names {
				var src *taintSource
				if len(s.Values) == len(s.Names) {
					src = st.exprTaint(fs, s.Values[i])
				} else if len(s.Values) == 1 {
					src = st.callResultTaint(fs, s.Values[0], i)
				}
				if src != nil {
					if obj := info.Defs[name]; obj != nil {
						st.setKey(fs, taintKey{obj: obj}, src)
					}
				}
			}
		case *ast.RangeStmt:
			if src := st.exprTaint(fs, s.X); src != nil {
				st.assignTo(fs, s.Key, src)
				st.assignTo(fs, s.Value, src)
			}
		case *ast.ReturnStmt:
			st.transferReturn(fs, s)
		case *ast.CallExpr:
			st.transferCall(fs, s)
		}
		return true
	})
}

// transferAssign handles = and := statements, including tuple-returning
// calls on the right-hand side.
func (st *taintState) transferAssign(fs *funcTaint, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		for i, lhs := range s.Lhs {
			if src := st.callResultTaint(fs, s.Rhs[0], i); src != nil {
				st.assignTo(fs, lhs, src)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			if src := st.exprTaint(fs, s.Rhs[i]); src != nil {
				st.assignTo(fs, lhs, src)
			}
		}
	}
}

// transferReturn merges returned taint into the function summary.
func (st *taintState) transferReturn(fs *funcTaint, s *ast.ReturnStmt) {
	sig := fs.ff.fn.Type().(*types.Signature)
	if len(s.Results) == 0 {
		// Naked return: named results are ordinary variables.
		for i := 0; i < sig.Results().Len(); i++ {
			v := sig.Results().At(i)
			if v.Name() != "" {
				st.markResult(fs, i, st.keyTaint(fs, taintKey{obj: v}))
			}
		}
		return
	}
	if len(s.Results) == 1 && sig.Results().Len() > 1 {
		for i := 0; i < sig.Results().Len(); i++ {
			st.markResult(fs, i, st.callResultTaint(fs, s.Results[0], i))
		}
		return
	}
	for i, r := range s.Results {
		st.markResult(fs, i, st.exprTaint(fs, r))
	}
}

// transferCall handles sources that taint a pointed-to argument, sink
// checks, and interprocedural propagation into callee parameters.
func (st *taintState) transferCall(fs *funcTaint, call *ast.CallExpr) {
	ff := fs.ff
	info := ff.pkg.Info
	callee := calleeFunc(info, call)

	if st.cfg.sourceCall != nil {
		if which, desc, ok := st.cfg.sourceCall(ff, call, callee); ok && which >= 0 && which < len(call.Args) {
			src := &taintSource{pos: call.Args[which].Pos(), desc: desc}
			target := ast.Unparen(call.Args[which])
			if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
				target = ast.Unparen(u.X)
			}
			st.assignTo(fs, target, src)
		}
	}

	if st.cfg.sinkArgs != nil {
		if desc, idxs := st.cfg.sinkArgs(ff, call, callee); len(idxs) > 0 {
			for _, i := range idxs {
				if i < 0 || i >= len(call.Args) {
					continue
				}
				if src := st.exprTaint(fs, call.Args[i]); src != nil {
					pos := st.g.prog.Fset.Position(call.Args[i].Pos())
					key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, desc)
					if _, dup := st.hits[key]; !dup {
						st.hits[key] = sinkHit{pos: pos, desc: desc, src: *src}
					}
				}
			}
		}
	}

	// Propagate tainted arguments into module callees (conservatively
	// through interface dispatch).
	if callee == nil {
		return
	}
	if st.cfg.sanitizer != nil && st.cfg.sanitizer(callee) {
		return
	}
	targets := st.g.resolve(flowEdge{call: call, callee: callee})
	if len(targets) == 0 {
		return
	}
	recvOffset := 0
	var recvExpr ast.Expr
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recvExpr = sel.X
		}
		recvOffset = 1
	}
	for _, target := range targets {
		if recvExpr != nil {
			if src := st.exprTaint(fs, recvExpr); src != nil {
				if taintDebug != "" && target.fn.Name() == taintDebug {
					fmt.Printf("DEBUG %s recv tainted by %s (origin %v)\n", target.fn.FullName(), ff.fn.FullName(), st.g.prog.Fset.Position(src.pos))
				}
				st.markParam(target, 0, src)
			}
		}
		sig := target.fn.Type().(*types.Signature)
		for i, arg := range call.Args {
			src := st.exprTaint(fs, arg)
			if src == nil {
				continue
			}
			slot := i + recvOffset
			if i >= sig.Params().Len() {
				slot = sig.Params().Len() - 1 + recvOffset // variadic tail
			}
			if taintDebug != "" && target.fn.Name() == taintDebug {
				fmt.Printf("DEBUG %s arg %d tainted by %s at %v (origin %v)\n", target.fn.FullName(), i, ff.fn.FullName(), st.g.prog.Fset.Position(arg.Pos()), st.g.prog.Fset.Position(src.pos))
			}
			st.markParam(target, slot, src)
		}
	}
}

// assignTo taints the storage named by an lvalue (or range variable).
func (st *taintState) assignTo(fs *funcTaint, lhs ast.Expr, src *taintSource) {
	if lhs == nil || src == nil {
		return
	}
	info := fs.ff.pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if obj != nil {
			st.setKey(fs, taintKey{obj: obj}, src)
		}
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if obj := info.Uses[base]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					st.setKey(fs, taintKey{obj: obj, field: l.Sel.Name}, src)
					return
				}
			}
		}
		st.assignTo(fs, l.X, src) // deeper chains collapse onto the base
	case *ast.IndexExpr:
		st.assignTo(fs, l.X, src)
	case *ast.StarExpr:
		st.assignTo(fs, l.X, src)
	}
}

func (st *taintState) setKey(fs *funcTaint, k taintKey, src *taintSource) {
	if fs.tainted[k] == nil {
		fs.tainted[k] = src
	}
}

// keyTaint reads a key's effective taint, honoring sanitization.
func (st *taintState) keyTaint(fs *funcTaint, k taintKey) *taintSource {
	if fs.sanitized[k] {
		return nil
	}
	if src := fs.tainted[k]; src != nil {
		return src
	}
	if k.field != "" {
		// Whole-object taint reaches every field that was not individually
		// sanitized.
		if !fs.sanitized[taintKey{obj: k.obj}] {
			return fs.tainted[taintKey{obj: k.obj}]
		}
		return nil
	}
	// Whole-object read of a struct with tainted fields.
	for fk, src := range fs.tainted {
		if fk.obj == k.obj && fk.field != "" && !fs.sanitized[fk] {
			return src
		}
	}
	return nil
}

// callResultTaint returns the taint of result slot i of a (possibly
// tuple-returning) call expression; for non-call expressions it falls back
// to exprTaint when i == 0.
func (st *taintState) callResultTaint(fs *funcTaint, e ast.Expr, i int) *taintSource {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		if i == 0 {
			return st.exprTaint(fs, e)
		}
		return nil
	}
	srcs := st.callTaints(fs, call)
	if i >= len(srcs) || srcs[i] == nil {
		return nil
	}
	if st.cfg.carries != nil {
		info := fs.ff.pkg.Info
		if tv, ok := info.Types[call]; ok && tv.Type != nil {
			t := tv.Type
			if tup, ok := t.(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
			if !st.cfg.carries(t) {
				return nil
			}
		}
	}
	return srcs[i]
}

// callTaints computes per-result taint for a call expression.
func (st *taintState) callTaints(fs *funcTaint, call *ast.CallExpr) []*taintSource {
	ff := fs.ff
	info := ff.pkg.Info

	// Conversions: T(x) carries x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []*taintSource{st.exprTaint(fs, call.Args[0])}
	}
	// Builtins: len/cap of attacker data are bounded by the input's actual
	// size, so they do not carry; append carries its arguments' taint.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "make", "new", "copy":
				return nil
			case "append":
				for _, a := range call.Args {
					if src := st.exprTaint(fs, a); src != nil {
						return []*taintSource{src}
					}
				}
				return nil
			default:
				return nil
			}
		}
	}

	callee := calleeFunc(info, call)
	if st.cfg.sourceCall != nil {
		if which, desc, ok := st.cfg.sourceCall(ff, call, callee); ok && which == -1 {
			src := &taintSource{pos: call.Pos(), desc: desc}
			n := 1
			if callee != nil {
				if sig, ok := callee.Type().(*types.Signature); ok {
					n = sig.Results().Len()
				}
			}
			out := make([]*taintSource, n)
			for i := range out {
				out[i] = src
			}
			return out
		}
	}
	if callee != nil {
		if st.cfg.clean != nil && st.cfg.clean(callee) {
			return nil
		}
		if st.cfg.sanitizer != nil && st.cfg.sanitizer(callee) {
			return nil
		}
	}

	targets := st.g.resolve(flowEdge{call: call, callee: callee})
	if len(targets) > 0 {
		// Module callees: use their summaries (merged over dispatch
		// targets).
		var out []*taintSource
		for _, target := range targets {
			ts := st.state(target)
			for i, src := range ts.results {
				for len(out) <= i {
					out = append(out, nil)
				}
				if out[i] == nil {
					out[i] = src
				}
			}
		}
		return out
	}

	// External callee (or dynamic call with no module target):
	// conservatively, any tainted argument taints every result.
	var src *taintSource
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		src = st.exprTaint(fs, sel.X)
	}
	if src == nil {
		for _, a := range call.Args {
			if src = st.exprTaint(fs, a); src != nil {
				break
			}
		}
	}
	if src == nil {
		return nil
	}
	n := 1
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok {
			n = sig.Results().Len()
		}
	}
	out := make([]*taintSource, n)
	for i := range out {
		out[i] = src
	}
	return out
}

// exprTaint computes the taint of an expression in single-value context.
func (st *taintState) exprTaint(fs *funcTaint, e ast.Expr) *taintSource {
	if e == nil {
		return nil
	}
	info := fs.ff.pkg.Info
	var src *taintSource
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj != nil {
			src = st.keyTaint(fs, taintKey{obj: obj})
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if obj := info.Uses[base]; obj != nil {
					src = st.keyTaint(fs, taintKey{obj: obj, field: x.Sel.Name})
					break
				}
			}
			src = st.exprTaint(fs, x.X)
		}
		// Package-qualified names and method values carry no taint here.
	case *ast.CallExpr:
		srcs := st.callTaints(fs, x)
		if len(srcs) > 0 {
			src = srcs[0]
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			if src = st.exprTaint(fs, x.X); src == nil {
				src = st.exprTaint(fs, x.Y)
			}
		}
	case *ast.UnaryExpr:
		src = st.exprTaint(fs, x.X)
	case *ast.StarExpr:
		src = st.exprTaint(fs, x.X)
	case *ast.IndexExpr:
		src = st.exprTaint(fs, x.X)
	case *ast.SliceExpr:
		src = st.exprTaint(fs, x.X)
	case *ast.TypeAssertExpr:
		src = st.exprTaint(fs, x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if src = st.exprTaint(fs, v); src != nil {
				break
			}
		}
	}
	if src != nil && st.cfg.carries != nil {
		if tv, ok := info.Types[e]; ok && tv.Type != nil && !st.cfg.carries(tv.Type) {
			return nil
		}
	}
	return src
}

// collectSanitized performs the syntax-only pre-pass gathering the keys
// the function launders: sanitizer-call arguments and guarded upper-bound
// comparisons. Computing this before the taint fixpoint keeps the transfer
// monotone (taint is never retracted, only never observed).
func collectSanitized(cfg *taintConfig, ff *flowFunc) map[taintKey]bool {
	out := make(map[taintKey]bool)
	info := ff.pkg.Info
	keyOf := func(e ast.Expr) (taintKey, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return taintKey{obj: obj}, true
			}
		case *ast.SelectorExpr:
			if base, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if obj := info.Uses[base]; obj != nil {
					if _, isPkg := obj.(*types.PkgName); !isPkg {
						return taintKey{obj: obj, field: x.Sel.Name}, true
					}
				}
			}
		}
		return taintKey{}, false
	}
	if cfg.sanitizer != nil {
		ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || !cfg.sanitizer(callee) {
				return true
			}
			for _, a := range call.Args {
				if k, ok := keyOf(a); ok {
					out[k] = true
				}
			}
			return true
		})
	}
	if cfg.boundComparisonSanitizes {
		var walkCond func(e ast.Expr)
		walkCond = func(e ast.Expr) {
			switch c := ast.Unparen(e).(type) {
			case *ast.BinaryExpr:
				switch c.Op {
				case token.LAND, token.LOR:
					walkCond(c.X)
					walkCond(c.Y)
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
					if isConstZero(info, c.Y) {
						return
					}
					if k, ok := keyOf(c.X); ok {
						out[k] = true
					}
				}
			case *ast.UnaryExpr:
				if c.Op == token.NOT {
					walkCond(c.X)
				}
			}
		}
		ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				walkCond(ifs.Cond)
			}
			return true
		})
	}
	return out
}

// isConstZero reports whether e is a constant with value 0.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	return v.Kind() == constant.Int && constant.Sign(v) == 0
}

// ---------------------------------------------------------------------------
// Shared helpers for the flow analyzers

// pkgPathIn reports whether path matches any element of set ("exact" or a
// trailing "/*" prefix wildcard).
func pkgPathIn(path string, set []string) bool {
	for _, p := range set {
		if pat, ok := strings.CutSuffix(p, "/*"); ok {
			if strings.HasPrefix(path, pat+"/") {
				return true
			}
			continue
		}
		if path == p {
			return true
		}
	}
	return false
}

// calleeIs reports whether fn is the named function of the named package
// (methods match on the receiver's base type name: "pkg.(T).M" is matched
// by name "T.M").
func calleeIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if recv := receiverTypeName(fn); recv != "" {
		return recv+"."+fn.Name() == name
	}
	return fn.Name() == name
}

// receiverTypeName returns the base type name of fn's receiver, "" for
// plain functions.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

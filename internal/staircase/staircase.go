// Package staircase implements the prior-art flow-based mapping that
// COMPACT is compared against (reference [16] of the paper): every BDD node
// is bound to both a wordline and a bitline, producing the inductive
// staircase structure that spans from the bottom-left to the top-right
// corner of the crossbar. The semiperimeter is therefore close to 2n
// (the paper measures ≈1.90n for [16]; the difference is that root nodes,
// having no incoming edges, need no bitline — an optimization applied here
// too). The mapping runs in time linear in the BDD size, matching the
// scalability the paper reports for [16].
package staircase

import (
	"fmt"

	"compact/internal/xbar"
)

// Map binds the BDD graph to a staircase crossbar design. Unlike COMPACT's
// labeling-driven mapping, no optimization problem is solved: node i simply
// receives wordline i and (when some edge enters it) bitline i, with a
// statically-on memristor stitching the two.
func Map(bg *xbar.BDDGraph) (*xbar.Design, error) {
	n := bg.G.N()
	// Direction of each edge: the parent is the endpoint closer to the
	// roots (smaller level); the 1-terminal (level -1) is always a child.
	depth := func(v int) int {
		if v == bg.TerminalID {
			return int(^uint(0) >> 1) // deepest
		}
		return bg.Level[v]
	}
	hasParent := make([]bool, n)
	type dirEdge struct{ parent, child int }
	edges := make([]dirEdge, 0, bg.G.M())
	for _, e := range bg.G.Edges() {
		u, v := e[0], e[1]
		if depth(u) > depth(v) {
			u, v = v, u
		}
		if depth(u) == depth(v) {
			return nil, fmt.Errorf("staircase: edge (%d,%d) joins equal levels", e[0], e[1])
		}
		edges = append(edges, dirEdge{parent: u, child: v})
		hasParent[v] = true
	}

	// Row order: const-0 row (if needed), root rows in output order, other
	// nodes by ascending level, terminal at the bottom (input port).
	rowOf := make([]int, n)
	for i := range rowOf {
		rowOf[i] = -1
	}
	nextRow := 0
	needConst0 := false
	for _, r := range bg.Roots {
		if r.Kind == xbar.RootConst0 {
			needConst0 = true
		}
	}
	const0Row := -1
	if needConst0 {
		const0Row = nextRow
		nextRow++
	}
	for _, r := range bg.Roots {
		if r.Kind == xbar.RootNode && r.NodeID != bg.TerminalID && rowOf[r.NodeID] < 0 {
			rowOf[r.NodeID] = nextRow
			nextRow++
		}
	}
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if v != bg.TerminalID && rowOf[v] < 0 {
			order = append(order, v)
		}
	}
	// Stable sort by level (ascending): roots near the top, deep nodes low.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && bg.Level[order[j]] < bg.Level[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, v := range order {
		rowOf[v] = nextRow
		nextRow++
	}
	rowOf[bg.TerminalID] = nextRow
	nextRow++

	colOf := make([]int, n)
	nextCol := 0
	for i := range colOf {
		colOf[i] = -1
	}
	// Columns in the same visual order as rows, skipping parentless nodes.
	byRow := make([]int, nextRow)
	for i := range byRow {
		byRow[i] = -1
	}
	for v := 0; v < n; v++ {
		byRow[rowOf[v]] = v
	}
	for _, v := range byRow {
		if v >= 0 && hasParent[v] {
			colOf[v] = nextCol
			nextCol++
		}
	}
	if nextCol == 0 {
		nextCol = 1
	}

	d := xbar.NewDesign(nextRow, nextCol)
	d.VarNames = bg.VarNames
	d.InputRow = rowOf[bg.TerminalID]
	for _, r := range bg.Roots {
		d.OutputNames = append(d.OutputNames, r.Name)
		switch r.Kind {
		case xbar.RootConst0:
			d.OutputRows = append(d.OutputRows, const0Row)
		case xbar.RootConst1:
			d.OutputRows = append(d.OutputRows, d.InputRow)
		default:
			d.OutputRows = append(d.OutputRows, rowOf[r.NodeID])
		}
	}
	// Stitch every node that owns both a wordline and a bitline.
	for v := 0; v < n; v++ {
		if colOf[v] >= 0 {
			d.Cells[rowOf[v]][colOf[v]] = xbar.Entry{Kind: xbar.On}
		}
	}
	// Each directed edge parent->child maps to (row(parent), col(child)).
	for _, e := range edges {
		r, c := rowOf[e.parent], colOf[e.child]
		if c < 0 {
			return nil, fmt.Errorf("staircase: child %d has no bitline", e.child)
		}
		if d.Cells[r][c].Kind != xbar.Off {
			return nil, fmt.Errorf("staircase: cell (%d,%d) assigned twice", r, c)
		}
		d.Cells[r][c] = bg.EdgeLit[edgeKey(e.parent, e.child)]
	}
	return d, nil
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

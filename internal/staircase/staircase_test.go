package staircase

import (
	"math/rand"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
)

func toGraph(t *testing.T, nw *logic.Network) *xbar.BDDGraph {
	t.Helper()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	return bg
}

func fig2() *logic.Network {
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	return b.Build()
}

func TestFig2Staircase(t *testing.T) {
	nw := fig2()
	bg := toGraph(t, nw)
	d, err := Map(bg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.VerifyAgainst(nw.Eval, 3, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
	// Every node gets a row; columns = nodes with parents (all but root).
	if d.Rows != bg.NumNodes() {
		t.Errorf("rows = %d, want n = %d", d.Rows, bg.NumNodes())
	}
	if d.Cols != bg.NumNodes()-1 {
		t.Errorf("cols = %d, want n-1 = %d", d.Cols, bg.NumNodes()-1)
	}
}

func TestStaircaseRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		nw := randomNetwork(rng, 5, 20)
		bg := toGraph(t, nw)
		d, err := Map(bg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bad := d.VerifyAgainst(nw.Eval, 5, 10, 0, 1); bad != nil {
			t.Fatalf("trial %d: mismatch on %v", trial, bad)
		}
		// Semiperimeter ~ 2n (minus parentless nodes), plus at most one
		// const-0 output row and one filler bitline in degenerate cases.
		st := d.Stats()
		if st.S > 2*bg.NumNodes()+2 {
			t.Errorf("trial %d: S = %d exceeds 2n+2 = %d", trial, st.S, 2*bg.NumNodes()+2)
		}
	}
}

func TestStaircaseAlwaysLargerThanCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(rng, 5, 18)
		bg := toGraph(t, nw)
		stair, err := Map(bg)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodMIP, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := xbar.Map(bg, sol.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Stats().S > stair.Stats().S {
			t.Errorf("trial %d: COMPACT S=%d worse than staircase S=%d", trial, comp.Stats().S, stair.Stats().S)
		}
	}
}

func TestStaircaseConstantOutputs(t *testing.T) {
	b := logic.NewBuilder("consts")
	a := b.Input("a")
	b.Output("one", b.Const1())
	b.Output("zero", b.Const0())
	b.Output("nota", b.Not(a))
	nw := b.Build()
	bg := toGraph(t, nw)
	d, err := Map(bg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.VerifyAgainst(nw.Eval, 1, 5, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestStaircaseMultiOutput(t *testing.T) {
	b := logic.NewBuilder("adder")
	xs := b.Inputs("x", 3)
	ys := b.Inputs("y", 3)
	sums, cout := b.AddRippleAdder(xs, ys, b.Const0())
	for i, s := range sums {
		b.Output([]string{"s0", "s1", "s2"}[i], s)
	}
	b.Output("cout", cout)
	nw := b.Build()
	bg := toGraph(t, nw)
	d, err := Map(bg)
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.VerifyAgainst(nw.Eval, 6, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
	if d.InputRow != d.Rows-1 {
		t.Errorf("input row not at bottom")
	}
}

func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(5) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

package xbar3d

import (
	"compact/internal/invariant"
	"compact/internal/xbar"
)

// Word-parallel evaluation through vias: the 2D bitset sneak-path closure
// (xbar.Eval64) lifted to the global wire numbering. reach[w] holds, per
// assignment bit, whether wire w connects to the input wire; every non-Off
// device — literal or via stitch — propagates reachability between its
// layer-d and layer-d+1 wires masked by its 64-assignment conduction word.

// Eval64 evaluates all outputs under 64 assignments at once; see
// xbar.Design.Eval64 for the word convention. Precondition violations
// panic; Eval64Checked is the error-returning form.
func (d *Design3D) Eval64(words []uint64) []uint64 {
	out, err := d.Eval64Checked(words)
	if err != nil {
		//lint:ignore panicfree documented Eval64 precondition on programmer-supplied assignments; Eval64Checked is the error-returning form for wire-decoded designs
		panic(err)
	}
	return out
}

// Eval64Checked is Eval64 with the preconditions checked, mirroring
// EvalChecked's validation.
func (d *Design3D) Eval64Checked(words []uint64) ([]uint64, error) {
	idx := d.sparseIdx()
	if idx.err != nil {
		return nil, idx.err
	}
	if int(idx.maxVar) >= len(words) {
		return nil, invariant.Violationf("xbar3d.eval-assignment",
			"assignment has %d entries but the design references variable %d", len(words), idx.maxVar)
	}
	offsets := d.layerOffsets()
	masks := make([]uint64, len(idx.cells))
	for i, sc := range idx.cells {
		masks[i] = sc.e.Conduct64(words)
	}
	reach := make([]uint64, d.NumWires())
	reach[d.WireID(d.Input)] = ^uint64(0)
	// Alternating forward/backward sweeps over the sparse cell list, exactly
	// the 2D fixpoint discipline: each sweep either sets a new bit (bounded
	// by 64·NumWires) or proves the closure.
	for {
		changed := false
		for i, sc := range idx.cells {
			m := masks[i]
			if m == 0 {
				continue
			}
			a, b := offsets[sc.d]+sc.row, offsets[sc.d+1]+sc.col
			u := (reach[a] | reach[b]) & m
			if u&^reach[a] != 0 {
				reach[a] |= u
				changed = true
			}
			if u&^reach[b] != 0 {
				reach[b] |= u
				changed = true
			}
		}
		if !changed {
			break
		}
		changed = false
		for i := len(idx.cells) - 1; i >= 0; i-- {
			m := masks[i]
			if m == 0 {
				continue
			}
			sc := idx.cells[i]
			a, b := offsets[sc.d]+sc.row, offsets[sc.d+1]+sc.col
			u := (reach[a] | reach[b]) & m
			if u&^reach[a] != 0 {
				reach[a] |= u
				changed = true
			}
			if u&^reach[b] != 0 {
				reach[b] |= u
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]uint64, len(d.Outputs))
	for i, o := range d.Outputs {
		out[i] = reach[d.WireID(o)]
	}
	return out, nil
}

// VerifyAgainst checks the design against a scalar reference evaluator;
// the enumeration, sampling and witness semantics are exactly
// xbar.VerifyEquiv's (shared driver).
func (d *Design3D) VerifyAgainst(ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	return xbar.VerifyEquiv(d.Eval64Checked, ref, nil, nVars, exhaustiveLimit, samples, seed)
}

// VerifyAgainst64 is VerifyAgainst with a word-parallel reference
// (logic.Network.Eval64 has the required shape).
func (d *Design3D) VerifyAgainst64(ref64 func([]uint64) []uint64, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	return xbar.VerifyEquiv(d.Eval64Checked, nil, ref64, nVars, exhaustiveLimit, samples, seed)
}

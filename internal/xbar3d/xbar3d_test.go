package xbar3d

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
)

func fig2Network() *logic.Network {
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	return b.Build()
}

// randomNetwork builds a random combinational network (mirrors xbar's
// test helper).
func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(6) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		case 4:
			id = b.Nand(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

// synth3 runs the layered pipeline with natural variable order:
// BDD -> graph -> K-labeling -> Map3D.
func synth3(t *testing.T, nw *logic.Network, k int) (*Design3D, *xbar.BDDGraph) {
	t.Helper()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.SolveK(context.Background(), bg.Problem(true), k, labeling.Options{
		Method: labeling.MethodHeuristic, Gamma: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map3D(bg, sol)
	if err != nil {
		t.Fatal(err)
	}
	return d, bg
}

func TestLayerCapMatchesLabeling(t *testing.T) {
	if MaxWireLayers != labeling.MaxLayers {
		t.Fatalf("MaxWireLayers %d != labeling.MaxLayers %d", MaxWireLayers, labeling.MaxLayers)
	}
}

func TestMap3DAtK2MatchesLifted2D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(rng, 5, 14)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			t.Fatal(err)
		}
		sol2, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodHeuristic, Gamma: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		d2, err := xbar.Map(bg, sol2.Labels)
		if err != nil {
			t.Fatal(err)
		}
		lifted, err := Lift3D(d2)
		if err != nil {
			t.Fatal(err)
		}
		d3, _ := synth3(t, nw, 2)
		if !reflect.DeepEqual(d3.Widths, lifted.Widths) {
			t.Fatalf("trial %d: widths %v vs lifted %v", trial, d3.Widths, lifted.Widths)
		}
		if !reflect.DeepEqual(d3.Cells, lifted.Cells) {
			t.Fatalf("trial %d: K=2 cells differ from the lifted 2D design", trial)
		}
		if d3.Input != lifted.Input || !reflect.DeepEqual(d3.Outputs, lifted.Outputs) {
			t.Fatalf("trial %d: ports differ: %+v/%v vs %+v/%v",
				trial, d3.Input, d3.Outputs, lifted.Input, lifted.Outputs)
		}
	}
}

func TestMap3DVerifiesAcrossK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		nw := randomNetwork(rng, 5, 16)
		for k := 2; k <= 4; k++ {
			d, _ := synth3(t, nw, k)
			if bad := d.VerifyAgainst(nw.Eval, nw.NumInputs(), 12, 0, 1); bad != nil {
				t.Fatalf("trial %d K=%d: mismatch on %v", trial, k, bad)
			}
			if bad := d.VerifyAgainst64(nw.Eval64, nw.NumInputs(), 12, 0, 1); bad != nil {
				t.Fatalf("trial %d K=%d: word-parallel mismatch on %v", trial, k, bad)
			}
		}
	}
}

func TestFormalVerify3D(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		nw := randomNetwork(rng, 5, 14)
		for k := 2; k <= 4; k++ {
			d, _ := synth3(t, nw, k)
			remap := make([]int, nw.NumInputs())
			for i := range remap {
				remap[i] = i
			}
			if err := d.RemapVars(remap, nw.InputNames()); err != nil {
				t.Fatal(err)
			}
			if err := FormalVerify3D(d, nw, 0); err != nil {
				t.Fatalf("trial %d K=%d: %v", trial, k, err)
			}
		}
	}
}

func TestFormalVerify3DCatchesFaults(t *testing.T) {
	nw := fig2Network()
	d, _ := synth3(t, nw, 3)
	remap := []int{0, 1, 2}
	if err := d.RemapVars(remap, nw.InputNames()); err != nil {
		t.Fatal(err)
	}
	if err := FormalVerify3D(d, nw, 0); err != nil {
		t.Fatal(err)
	}
	// Flip one literal: the proof must fail.
	flipped := false
	for dl := range d.Cells {
		for r := range d.Cells[dl] {
			for c := range d.Cells[dl][r] {
				if d.Cells[dl][r][c].Kind == xbar.Lit && !flipped {
					d.Cells[dl][r][c].Neg = !d.Cells[dl][r][c].Neg
					flipped = true
				}
			}
		}
	}
	if !flipped {
		t.Fatal("no literal cell to corrupt")
	}
	d.sparse.Store(nil)
	if err := FormalVerify3D(d, nw, 0); err == nil {
		t.Fatal("corrupted design passed formal verification")
	}
}

func TestEval64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		nw := randomNetwork(rng, 6, 18)
		for k := 2; k <= 4; k++ {
			d, _ := synth3(t, nw, k)
			n := d.NumVars()
			total := 1 << uint(n)
			for base := 0; base < total; base += 64 {
				words := make([]uint64, n)
				for b := 0; b < 64 && base+b < total; b++ {
					for i := 0; i < n; i++ {
						if (base+b)&(1<<uint(i)) != 0 {
							words[i] |= 1 << uint(b)
						}
					}
				}
				got, err := d.Eval64Checked(words)
				if err != nil {
					t.Fatal(err)
				}
				for b := 0; b < 64 && base+b < total; b++ {
					in := make([]bool, n)
					for i := range in {
						in[i] = (base+b)&(1<<uint(i)) != 0
					}
					want, err := d.EvalChecked(in)
					if err != nil {
						t.Fatal(err)
					}
					for o := range want {
						if want[o] != (got[o]>>uint(b)&1 == 1) {
							t.Fatalf("trial %d K=%d assignment %v output %d: scalar %v, word %v",
								trial, k, in, o, want[o], !want[o])
						}
					}
				}
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	nw := fig2Network()
	for k := 2; k <= 4; k++ {
		d, _ := synth3(t, nw, k)
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Design3D
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !reflect.DeepEqual(back.Widths, d.Widths) || !reflect.DeepEqual(back.Cells, d.Cells) {
			t.Fatalf("K=%d: round trip changed the design", k)
		}
		if back.Input != d.Input || !reflect.DeepEqual(back.Outputs, d.Outputs) {
			t.Fatalf("K=%d: round trip changed the ports", k)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(data) {
			t.Fatalf("K=%d: re-encode not byte-stable", k)
		}
		// Decoded designs evaluate.
		if bad := back.VerifyAgainst(nw.Eval, nw.NumInputs(), 10, 0, 1); bad != nil {
			t.Fatalf("K=%d: decoded design mismatches on %v", k, bad)
		}
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"version":        `{"v":9,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"one layer":      `{"v":1,"widths":[4],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"layer flood":    `{"v":1,"widths":[1,1,1,1,1,1,1,1,1,1],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"width bomb":     `{"v":1,"widths":[2147483647,2],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"cell bomb":      `{"v":1,"widths":[65536,65536,65536],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"negative width": `{"v":1,"widths":[-1,2],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		"bad input":      `{"v":1,"widths":[2,2],"input":{"l":0,"i":5},"outputs":[],"cells":[]}`,
		"bad output":     `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[{"l":7,"i":0}],"cells":[]}`,
		"bad plane":      `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":3,"r":0,"c":0,"k":"on"}]}`,
		"bad coord":      `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":9,"c":0,"k":"on"}]}`,
		"dup cell":       `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":0,"c":0,"k":"on"},{"d":0,"r":0,"c":0,"k":"on"}]}`,
		"bad kind":       `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":0,"c":0,"k":"maybe"}]}`,
		"neg var":        `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":0,"c":0,"k":"lit","var":-4}]}`,
		"var range":      `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"var_names":["a"],"cells":[{"d":0,"r":0,"c":0,"k":"lit","var":3}]}`,
		"name count":     `{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"output_names":["f"],"cells":[]}`,
	}
	for name, data := range cases {
		var d Design3D
		if err := json.Unmarshal([]byte(data), &d); err == nil {
			t.Errorf("%s: malformed design accepted", name)
		}
	}
}

// tiny2Layer is a hand-built f = x0 stack: input wire (0,1) reaches wire
// (1,0) through an On via, then the output wire (0,0) through a literal.
func tiny2Layer(t *testing.T) *Design3D {
	t.Helper()
	d, err := NewDesign3D([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Cells[0][0][0] = xbar.Entry{Kind: xbar.Lit, Var: 0}
	d.Cells[0][1][0] = xbar.Entry{Kind: xbar.On}
	d.Input = WireRef{Layer: 0, Index: 1}
	d.Outputs = []WireRef{{Layer: 0, Index: 0}}
	d.OutputNames = []string{"f"}
	d.VarNames = []string{"a"}
	return d
}

func TestPlace3DAroundStuckDevice(t *testing.T) {
	d := tiny2Layer(t)
	dm, err := defect.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(0, 0, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	maps := []*defect.Map{dm}
	pl, err := Place3D(context.Background(), d, maps, xbar.PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "greedy" {
		t.Fatalf("engine %q, want greedy (identity is incompatible)", pl.Engine)
	}
	eff, err := d.UnderDefects3D(maps, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range [][]bool{{false}, {true}} {
		want, err := d.EvalChecked(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eff.EvalChecked(a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("placed array computes %v on %v, want %v", got, a, want)
		}
	}
}

func TestPlace3DIdentityWhenClean(t *testing.T) {
	d := tiny2Layer(t)
	dm, err := defect.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place3D(context.Background(), d, []*defect.Map{dm}, xbar.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "identity" {
		t.Fatalf("engine %q, want identity", pl.Engine)
	}
}

func TestPlace3DUnplaceableIsTyped(t *testing.T) {
	d := tiny2Layer(t)
	dm, err := defect.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if err := dm.Set(r, c, defect.StuckOn); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, err = Place3D(context.Background(), d, []*defect.Map{dm}, xbar.PlaceOptions{})
	var up *Unplaceable3D
	if !asUnplaceable3D(err, &up) {
		t.Fatalf("error %v is not *Unplaceable3D", err)
	}
}

func asUnplaceable3D(err error, target **Unplaceable3D) bool {
	u, ok := err.(*Unplaceable3D)
	if ok {
		*target = u
	}
	return ok
}

func TestPhysWidthsRejectsInconsistentStack(t *testing.T) {
	nw := fig2Network()
	d, _ := synth3(t, nw, 3)
	maps := make([]*defect.Map, 2)
	var err error
	if maps[0], err = defect.New(d.Widths[0], d.Widths[1]); err != nil {
		t.Fatal(err)
	}
	// Plane 1's row count disagrees with plane 0's column count.
	if maps[1], err = defect.New(d.Widths[1]+3, d.Widths[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := Place3D(context.Background(), d, maps, xbar.PlaceOptions{}); err == nil {
		t.Fatal("inconsistent stack accepted")
	}
	if _, err := d.UnderDefects3D(maps, nil); err == nil {
		t.Fatal("inconsistent stack accepted by UnderDefects3D")
	}
}

func TestEvalCheckedRejectsCorruption(t *testing.T) {
	d := tiny2Layer(t)
	d.Cells[0][0][0] = xbar.Entry{Kind: xbar.Lit, Var: -2}
	d.sparse.Store(nil)
	if _, err := d.EvalChecked([]bool{true}); err == nil {
		t.Fatal("negative-var cell evaluated")
	}
	d.Cells[0][0][0] = xbar.Entry{Kind: 7}
	d.sparse.Store(nil)
	if _, err := d.Eval64Checked([]uint64{0}); err == nil {
		t.Fatal("unknown-kind cell evaluated")
	}
	d = tiny2Layer(t)
	if _, err := d.EvalChecked(nil); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestStats3D(t *testing.T) {
	nw := fig2Network()
	d, _ := synth3(t, nw, 3)
	st := d.Stats()
	if st.K != 3 || len(st.Widths) != 3 {
		t.Fatalf("stats K/widths wrong: %+v", st)
	}
	if st.S != st.R+st.C {
		t.Fatalf("S %d != R+C %d", st.S, st.R+st.C)
	}
	wantArea := d.Widths[0]*d.Widths[1] + d.Widths[1]*d.Widths[2]
	if st.Area != wantArea {
		t.Fatalf("area %d, want %d", st.Area, wantArea)
	}
	if st.Power != st.LitCells || st.Delay != st.R+1 {
		t.Fatalf("power/delay proxies wrong: %+v", st)
	}
}

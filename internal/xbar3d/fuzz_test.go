package xbar3d

import (
	"bytes"
	"encoding/json"
	"testing"

	"compact/internal/xbar"
)

// FuzzDesign3DJSON asserts that decoding arbitrary bytes as a Design3D
// never panics or over-allocates (every wire-declared dimension is bounded
// before dense allocation), that any accepted design evaluates safely with
// the scalar and word-parallel evaluators agreeing, and that accepted
// designs survive an encode → decode round trip byte-for-byte.
func FuzzDesign3DJSON(f *testing.F) {
	seeds := []string{
		`{"v":1,"widths":[2,2],"input":{"l":0,"i":1},"outputs":[{"l":0,"i":0}],"cells":[{"d":0,"r":0,"c":0,"k":"lit","var":0},{"d":0,"r":1,"c":0,"k":"on"}]}`,
		`{"v":1,"widths":[2,2,2],"input":{"l":0,"i":0},"outputs":[{"l":2,"i":1}],"var_names":["a","b"],"cells":[{"d":0,"r":0,"c":1,"k":"lit","var":1,"neg":true},{"d":1,"r":1,"c":1,"k":"on"}]}`,
		`{"v":1,"widths":[1,1],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		// Accepted: no var_names, so the large literal index is unchecked at
		// decode time — Eval must still be safe.
		`{"v":1,"widths":[1,1],"input":{"l":0,"i":0},"outputs":[{"l":1,"i":0}],"cells":[{"d":0,"r":0,"c":0,"k":"lit","var":1000}]}`,
		// Rejected inputs: bad version, layer flood, width bombs, bad refs,
		// duplicate and unknown cells.
		`{"v":2,"widths":[2,2]}`,
		`{"v":1,"widths":[4]}`,
		`{"v":1,"widths":[1,1,1,1,1,1,1,1,1]}`,
		`{"v":1,"widths":[2147483647,2],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		`{"v":1,"widths":[65536,65536,65536],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		`{"v":1,"widths":[-3,2],"input":{"l":0,"i":0},"outputs":[],"cells":[]}`,
		`{"v":1,"widths":[2,2],"input":{"l":5,"i":0},"outputs":[],"cells":[]}`,
		`{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[{"l":1,"i":9}],"cells":[]}`,
		`{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":0,"c":0,"k":"on"},{"d":0,"r":0,"c":0,"k":"on"}]}`,
		`{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"cells":[{"d":0,"r":0,"c":0,"k":"wat"}]}`,
		`{"v":1,"widths":[2,2],"input":{"l":0,"i":0},"outputs":[],"var_names":["a"],"cells":[{"d":0,"r":0,"c":0,"k":"lit","var":7}]}`,
		`not json`,
		`{}`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Design3D
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		// Accepted designs must evaluate with a sufficient assignment, and
		// the word-parallel closure must agree with the scalar oracle on the
		// all-false and all-true assignments.
		n := d.NumVars()
		for _, bit := range []bool{false, true} {
			in := make([]bool, n)
			words := make([]uint64, n)
			for i := range in {
				in[i] = bit
				if bit {
					words[i] = ^uint64(0)
				}
			}
			want, err := d.EvalChecked(in)
			if err != nil {
				t.Fatalf("decoded design does not evaluate: %v", err)
			}
			got, err := d.Eval64Checked(words)
			if err != nil {
				t.Fatalf("decoded design does not word-evaluate: %v", err)
			}
			for o := range want {
				if want[o] != (got[o]&1 == 1) {
					t.Fatalf("scalar/word disagreement on output %d under all-%v", o, bit)
				}
			}
		}
		// A short assignment must fail closed, never panic.
		hasLit := false
		for _, plane := range d.Cells {
			for _, row := range plane {
				for _, e := range row {
					hasLit = hasLit || e.Kind == xbar.Lit
				}
			}
		}
		if hasLit {
			if _, err := d.EvalChecked(nil); err == nil {
				t.Fatal("EvalChecked accepted a nil assignment for a design with literals")
			}
		}
		enc, err := json.Marshal(&d)
		if err != nil {
			t.Fatalf("re-encoding an accepted design failed: %v", err)
		}
		var d2 Design3D
		if err := json.Unmarshal(enc, &d2); err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(&d2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not byte-stable:\n%s\n%s", enc, enc2)
		}
	})
}

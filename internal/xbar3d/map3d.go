package xbar3d

import (
	"fmt"

	"compact/internal/invariant"
	"compact/internal/labeling"
	"compact/internal/xbar"
)

// Map3D performs the K-layer crossbar mapping step: nodes are bound to
// per-layer nanowires according to their layer intervals, multi-layer
// nodes get always-ON via stitches joining their wires on consecutive
// layers, and every graph edge becomes a memristor on the lowest device
// plane where its endpoints sit on adjacent layers.
//
// The per-layer wire order generalizes xbar.Map's row/column convention so
// a K=2 mapping is cell-for-cell the 2D design (the equivalence suite in
// internal/core pins this): on each even (wordline) layer the order is a
// const-0 wire (layer 0 only, when a constant-false output exists), then
// output roots whose lowest even layer is this one in output order, then
// the remaining occupants in node order, with the 1-terminal (input port)
// last on its lowest even layer; odd (bitline) layers order occupants by
// node id. Zero-width layers are padded to one wire, mirroring the 2D
// degenerate-bitline padding.
func Map3D(bg *xbar.BDDGraph, sol *labeling.KSolution) (*Design3D, error) {
	k, lo, hi := sol.K, sol.Lo, sol.Hi
	if err := labeling.ValidateK(bg.Problem(false), k, lo, hi); err != nil {
		return nil, fmt.Errorf("xbar3d: %w", err)
	}
	n := bg.G.N()
	lowestEven := func(v int) int {
		for l := lo[v]; l <= hi[v]; l++ {
			if l%2 == 0 {
				return l
			}
		}
		return -1
	}
	for _, r := range bg.Roots {
		if r.Kind == xbar.RootNode && lowestEven(r.NodeID) < 0 {
			return nil, fmt.Errorf("xbar3d: output %q root occupies no wordline layer (interval [%d,%d]); outputs must reach an even layer",
				r.Name, lo[r.NodeID], hi[r.NodeID])
		}
	}
	if lowestEven(bg.TerminalID) < 0 {
		return nil, fmt.Errorf("xbar3d: 1-terminal occupies no wordline layer (interval [%d,%d]); the input port must reach an even layer",
			lo[bg.TerminalID], hi[bg.TerminalID])
	}

	// idx[l][v] is node v's wire index on layer l (-1 when absent).
	idx := make([][]int, k)
	widths := make([]int, k)
	for l := range idx {
		idx[l] = make([]int, n)
		for v := range idx[l] {
			idx[l][v] = -1
		}
	}
	needConst0 := false
	for _, r := range bg.Roots {
		if r.Kind == xbar.RootConst0 {
			needConst0 = true
		}
	}
	const0Index := -1
	inputLayer := lowestEven(bg.TerminalID)
	for l := 0; l < k; l++ {
		next := 0
		if l%2 == 0 {
			if l == 0 && needConst0 {
				const0Index = next
				next++
			}
			for _, r := range bg.Roots {
				if r.Kind == xbar.RootNode && r.NodeID != bg.TerminalID &&
					lowestEven(r.NodeID) == l && idx[l][r.NodeID] < 0 {
					idx[l][r.NodeID] = next
					next++
				}
			}
			for v := 0; v < n; v++ {
				if v == bg.TerminalID && l == inputLayer {
					continue // the input port is bound last on its layer
				}
				if idx[l][v] < 0 && labeling.Occupies(lo[v], hi[v], l) {
					idx[l][v] = next
					next++
				}
			}
			if l == inputLayer {
				idx[l][bg.TerminalID] = next
				next++
			}
		} else {
			for v := 0; v < n; v++ {
				if labeling.Occupies(lo[v], hi[v], l) {
					idx[l][v] = next
					next++
				}
			}
		}
		if next == 0 {
			next = 1 // degenerate empty layer: pad so the stack stays well-formed
		}
		widths[l] = next
	}

	d, err := NewDesign3D(widths)
	if err != nil {
		return nil, err
	}
	d.VarNames = bg.VarNames
	d.Input = WireRef{Layer: inputLayer, Index: idx[inputLayer][bg.TerminalID]}
	for _, r := range bg.Roots {
		d.OutputNames = append(d.OutputNames, r.Name)
		switch r.Kind {
		case xbar.RootConst0:
			d.Outputs = append(d.Outputs, WireRef{Layer: 0, Index: const0Index})
		case xbar.RootConst1:
			d.Outputs = append(d.Outputs, d.Input)
		default:
			l := lowestEven(r.NodeID)
			d.Outputs = append(d.Outputs, WireRef{Layer: l, Index: idx[l][r.NodeID]})
		}
	}

	// Via stitches: a node spanning layers l and l+1 joins its two wires
	// with a statically-ON device on plane l.
	stitches := 0
	for v := 0; v < n; v++ {
		for l := lo[v]; l < hi[v]; l++ {
			d.Cells[l][idx[l][v]][idx[l+1][v]] = xbar.Entry{Kind: xbar.On}
			stitches++
		}
	}
	// Edge assignment: lowest device plane first, preferring the
	// (e[0]@d, e[1]@d+1) orientation — at K=2 this is exactly xbar.Map's
	// "u on the wordline, v on the bitline" preference.
	for _, e := range bg.G.Edges() {
		u, v := e[0], e[1]
		lit := bg.EdgeLit[edgeKey(u, v)]
		placed := false
		for dl := 0; dl < k-1 && !placed; dl++ {
			var r, c int
			switch {
			case idx[dl][u] >= 0 && idx[dl+1][v] >= 0:
				r, c = idx[dl][u], idx[dl+1][v]
			case idx[dl][v] >= 0 && idx[dl+1][u] >= 0:
				r, c = idx[dl][v], idx[dl+1][u]
			default:
				continue
			}
			if d.Cells[dl][r][c].Kind != xbar.Off {
				return nil, fmt.Errorf("xbar3d: cell (%d,%d,%d) assigned twice", dl, r, c)
			}
			d.Cells[dl][r][c] = lit
			placed = true
		}
		if !placed {
			return nil, fmt.Errorf("xbar3d: edge (%d,%d) has no free adjacent-layer crossing", u, v)
		}
	}
	// Postcondition: exactly one device per edge plus one stitch per
	// spanned layer pair landed on the planes.
	programmed := 0
	for _, plane := range d.Cells {
		for _, row := range plane {
			for _, e := range row {
				if e.Kind != xbar.Off {
					programmed++
				}
			}
		}
	}
	if programmed != bg.G.M()+stitches {
		return nil, invariant.Violationf("xbar3d.mapped-cells",
			"%d programmed cells for %d edges and %d stitches", programmed, bg.G.M(), stitches)
	}
	return d, nil
}

// edgeKey normalizes an undirected edge for EdgeLit lookup (u < v), the
// same convention as xbar's unexported helper.
func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Lift3D embeds a 2D design as the equivalent 2-layer Design3D: layer 0
// carries the wordlines (rows), layer 1 the bitlines (cols), and device
// plane 0 is the 2D cell matrix verbatim. The lifted design evaluates
// identically; the K=2 equivalence suite compares Map3D output against it
// cell for cell.
func Lift3D(src *xbar.Design) (*Design3D, error) {
	cols := src.Cols
	if cols == 0 {
		cols = 1
	}
	d, err := NewDesign3D([]int{src.Rows, cols})
	if err != nil {
		return nil, err
	}
	for r, row := range src.Cells {
		copy(d.Cells[0][r], row)
	}
	d.Input = WireRef{Layer: 0, Index: src.InputRow}
	for _, r := range src.OutputRows {
		d.Outputs = append(d.Outputs, WireRef{Layer: 0, Index: r})
	}
	d.OutputNames = append([]string(nil), src.OutputNames...)
	d.VarNames = append([]string(nil), src.VarNames...)
	return d, nil
}

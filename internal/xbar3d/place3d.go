package xbar3d

import (
	"context"
	"fmt"

	"compact/internal/defect"
	"compact/internal/invariant"
	"compact/internal/xbar"
)

// Defect-aware layered placement
//
// A layered physical array carries one defect.Map per device plane (plane
// d's map is physWidth(d) x physWidth(d+1)). A Placement3D chooses which
// physical nanowire each logical wire of every layer occupies; physical
// wires left unused are floating spares, so their faults are harmless —
// the same semantics as the 2D placement in xbar.
//
// The search is a seeded greedy sequential matching: wire layers are
// placed bottom-up, layer l's assignment constrained by the plane-(l-1)
// faults against the already-fixed layer l-1, with randomized tie-breaking
// across rounds. There is no exact-ILP escalation for the layered case —
// the per-layer assignment polytopes are coupled through shared planes, so
// the 2D assignment formulation does not carry over; the repair loop in
// core retries with derived seeds instead, exactly like the 2D greedy
// stage.

// Placement3D binds each logical wire of each layer to a physical wire.
type Placement3D struct {
	// Perms[l][i] is the physical wire carrying logical wire i of layer l;
	// each Perms[l] is injective into the layer's physical width.
	Perms [][]int
	// Engine records the search stage: "identity" or "greedy".
	Engine string
}

// Unplaceable3D reports that no layered placement was found. Proven marks
// a certificate (dimension mismatch); a greedy exhaustion proves nothing.
type Unplaceable3D struct {
	Stage  string // "dims", "shape" or "greedy"
	Layer  int    // wire layer the search got stuck on (-1 when not layer-shaped)
	Detail string
	Proven bool
}

func (u *Unplaceable3D) Error() string {
	msg := fmt.Sprintf("xbar3d: design unplaceable (%s stage): %s", u.Stage, u.Detail)
	if u.Layer >= 0 {
		msg += fmt.Sprintf("; witness: wire layer %d", u.Layer)
	}
	if u.Proven {
		msg += " [proven infeasible]"
	}
	return msg
}

// compatCell3 is the 2D compatibility table: a stuck-OFF device only
// carries Off, a stuck-ON device only On, a healthy device anything.
func compatCell3(e xbar.Entry, k defect.Kind) bool {
	switch k {
	case defect.StuckOff:
		return e.Kind == xbar.Off
	case defect.StuckOn:
		return e.Kind == xbar.On
	}
	return true
}

// physWidths derives the per-layer physical wire counts from the plane
// maps and validates the stack's shape consistency: interior layer l is
// the column side of plane l-1 and the row side of plane l, so those two
// declared dimensions must agree.
func physWidths(d *Design3D, maps []*defect.Map) ([]int, error) {
	k := d.K()
	if maps == nil {
		return append([]int(nil), d.Widths...), nil
	}
	if len(maps) != k-1 {
		return nil, &Unplaceable3D{Stage: "shape", Layer: -1, Proven: true,
			Detail: fmt.Sprintf("%d defect maps for %d device planes", len(maps), k-1)}
	}
	phys := make([]int, k)
	for l := 0; l < k; l++ {
		switch {
		case l < k-1:
			phys[l] = maps[l].Rows()
			if l > 0 && maps[l-1].Cols() != phys[l] {
				return nil, &Unplaceable3D{Stage: "shape", Layer: l, Proven: true,
					Detail: fmt.Sprintf("plane %d is %dx%d but plane %d is %dx%d: layer %d width disagrees",
						l-1, maps[l-1].Rows(), maps[l-1].Cols(), l, maps[l].Rows(), maps[l].Cols(), l)}
			}
		default:
			phys[l] = maps[l-1].Cols()
		}
	}
	return phys, nil
}

// resolvePerms3 validates pl against d and maps, returning the effective
// per-layer permutations (identity when pl is nil).
func resolvePerms3(d *Design3D, maps []*defect.Map, pl *Placement3D) ([][]int, []int, error) {
	phys, err := physWidths(d, maps)
	if err != nil {
		return nil, nil, err
	}
	k := d.K()
	if pl == nil {
		perms := make([][]int, k)
		for l := 0; l < k; l++ {
			if phys[l] < d.Widths[l] {
				return nil, nil, fmt.Errorf("xbar3d: layer %d needs %d wires but the physical array has %d",
					l, d.Widths[l], phys[l])
			}
			perms[l] = make([]int, d.Widths[l])
			for i := range perms[l] {
				perms[l][i] = i
			}
		}
		return perms, phys, nil
	}
	if len(pl.Perms) != k {
		return nil, nil, fmt.Errorf("xbar3d: placement has %d layer permutations for %d layers", len(pl.Perms), k)
	}
	for l := 0; l < k; l++ {
		if len(pl.Perms[l]) != d.Widths[l] {
			return nil, nil, fmt.Errorf("xbar3d: layer %d placement maps %d wires, design has %d",
				l, len(pl.Perms[l]), d.Widths[l])
		}
		if err := checkInjective3(pl.Perms[l], phys[l], l); err != nil {
			return nil, nil, err
		}
	}
	return pl.Perms, phys, nil
}

func checkInjective3(perm []int, bound, layer int) error {
	seen := make(map[int]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= bound {
			return fmt.Errorf("xbar3d: layer %d placement maps %d to %d, outside 0..%d", layer, i, p, bound-1)
		}
		if seen[p] {
			return fmt.Errorf("xbar3d: layer %d placement maps two wires to physical wire %d", layer, p)
		}
		seen[p] = true
	}
	return nil
}

// inversePerm3 maps physical wire -> logical wire (-1 where unused).
func inversePerm3(perm []int, bound int) []int {
	inv := make([]int, bound)
	for i := range inv {
		inv[i] = -1
	}
	for logical, physical := range perm {
		inv[physical] = logical
	}
	return inv
}

// UnderDefects3D returns the effective design the layered physical array
// computes: the logical design placed by pl (identity when nil) onto the
// planes described by maps, each crossing landing on a stuck device
// overridden by the stuck behavior. Faults on unused physical wires are
// ignored. The result is a deep copy.
func (d *Design3D) UnderDefects3D(maps []*defect.Map, pl *Placement3D) (*Design3D, error) {
	perms, phys, err := resolvePerms3(d, maps, pl)
	if err != nil {
		return nil, err
	}
	nd := d.Clone()
	if maps == nil {
		return nd, nil
	}
	for dl, dm := range maps {
		if dm.Len() == 0 {
			continue
		}
		invRow := inversePerm3(perms[dl], phys[dl])
		invCol := inversePerm3(perms[dl+1], phys[dl+1])
		for _, fc := range dm.Cells() {
			r, c := invRow[fc.Row], invCol[fc.Col]
			if r < 0 || c < 0 {
				continue // crossing on an unused (disconnected) physical wire
			}
			switch fc.Kind {
			case defect.StuckOn:
				nd.Cells[dl][r][c] = xbar.Entry{Kind: xbar.On}
			case defect.StuckOff:
				nd.Cells[dl][r][c] = xbar.Entry{Kind: xbar.Off}
			}
		}
	}
	return nd, nil
}

// compatible3 reports whether the full placement satisfies every defective
// crossing on every plane.
func compatible3(d *Design3D, maps []*defect.Map, perms [][]int, phys []int) bool {
	for dl, dm := range maps {
		if dm.Len() == 0 {
			continue
		}
		invRow := inversePerm3(perms[dl], phys[dl])
		invCol := inversePerm3(perms[dl+1], phys[dl+1])
		for _, fc := range dm.Cells() {
			r, c := invRow[fc.Row], invCol[fc.Col]
			if r >= 0 && c >= 0 && !compatCell3(d.Cells[dl][r][c], fc.Kind) {
				return false
			}
		}
	}
	return true
}

// Place3D searches for a layered placement of d onto the defective planes.
// Fault-free stacks return the identity placement immediately; otherwise
// seeded greedy rounds run the sequential per-layer matching. A returned
// placement always passes the full-compatibility postcondition; failure is
// a typed *Unplaceable3D.
func Place3D(ctx context.Context, d *Design3D, maps []*defect.Map, opts xbar.PlaceOptions) (*Placement3D, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if idx := d.sparseIdx(); idx.err != nil {
		return nil, idx.err
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 32
	}
	phys, err := physWidths(d, maps)
	if err != nil {
		return nil, err
	}
	k := d.K()
	for l := 0; l < k; l++ {
		if phys[l] < d.Widths[l] {
			return nil, &Unplaceable3D{Stage: "dims", Layer: l, Proven: true,
				Detail: fmt.Sprintf("layer %d needs %d wires but the physical array has %d", l, d.Widths[l], phys[l])}
		}
	}
	identity := func() [][]int {
		perms := make([][]int, k)
		for l := 0; l < k; l++ {
			perms[l] = make([]int, d.Widths[l])
			for i := range perms[l] {
				perms[l][i] = i
			}
		}
		return perms
	}
	totalFaults := 0
	for _, dm := range maps {
		totalFaults += dm.Len()
	}
	finish := func(perms [][]int, engine string) (*Placement3D, error) {
		for l := 0; l < k; l++ {
			if err := checkInjective3(perms[l], phys[l], l); err != nil {
				return nil, err
			}
		}
		if !compatible3(d, maps, perms, phys) {
			return nil, invariant.Violationf("xbar3d.place-compatible",
				"%s placement binds an incompatible crossing onto a stuck device", engine)
		}
		return &Placement3D{Perms: perms, Engine: engine}, nil
	}
	if totalFaults == 0 {
		return finish(identity(), "identity")
	}
	if perms := identity(); compatible3(d, maps, perms, phys) {
		return finish(perms, "identity")
	}

	rng := opts.Seed*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(bound))
	}
	order := func(n int, shuffle bool) []int {
		o := make([]int, n)
		for i := range o {
			o[i] = i
		}
		if shuffle {
			for i := n - 1; i > 0; i-- {
				j := next(i + 1)
				o[i], o[j] = o[j], o[i]
			}
		}
		return o
	}
	// Per-plane faults grouped by physical column for the sequential pass.
	byCol := make([]map[int][]defect.Cell, k-1)
	for dl, dm := range maps {
		byCol[dl] = map[int][]defect.Cell{}
		for _, fc := range dm.Cells() {
			byCol[dl][fc.Col] = append(byCol[dl][fc.Col], fc)
		}
	}
	// Backtracking over matching multiplicity. Given a fixed layer l-1
	// binding, kuhn3 is exact: an incomplete matching at layer l proves no
	// perfect matching exists for that prefix, so retrying layer l is
	// useless — the search must backtrack and draw a *different* perfect
	// matching at an earlier layer (candidate-order shuffling steers kuhn3
	// toward a different one). Each matching at layer l only sees plane
	// l-1's faults — plane l's are settled when layer l+1 is matched — so
	// the choice among valid layer-l matchings is blind to the plane above;
	// backtracking is what recovers from a blind choice that strands the
	// next layer. The kuhn-call budget scales with opts.Rounds and bounds
	// the whole search.
	stuck := -1
	budget := rounds * 32
	perms := make([][]int, k)
	var search func(l int, shuffle bool) bool
	search = func(l int, shuffle bool) bool {
		if ctx.Err() != nil || budget <= 0 {
			return false
		}
		if l == k {
			return compatible3(d, maps, perms, phys)
		}
		if l == 0 {
			// No fixed plane below layer 0: any injective binding works for
			// the sequential pass; top-level rounds redraw it.
			perms[0] = order(phys[0], shuffle)[:d.Widths[0]]
			return search(1, shuffle)
		}
		tries := 1
		if shuffle {
			tries = 4
		}
		invPrev := inversePerm3(perms[l-1], phys[l-1])
		plane := d.Cells[l-1]
		faults := byCol[l-1]
		compat := func(i, p int) bool {
			for _, fc := range faults[p] {
				if r := invPrev[fc.Row]; r >= 0 && !compatCell3(plane[r][i], fc.Kind) {
					return false
				}
			}
			return true
		}
		for t := 0; t < tries && budget > 0; t++ {
			budget--
			perm, complete := kuhn3(d.Widths[l], phys[l], compat, order(phys[l], shuffle || t > 0))
			if !complete {
				if l > stuck {
					stuck = l
				}
				return false // proven: no matching under this prefix
			}
			perms[l] = perm
			if search(l+1, shuffle) {
				return true
			}
		}
		return false
	}
	for round := 0; round < rounds && budget > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Round 0 prefers near-identity bindings.
		if search(0, round > 0) {
			return finish(perms, "greedy")
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, &Unplaceable3D{Stage: "greedy", Layer: stuck,
		Detail: fmt.Sprintf("backtracking matching found no placement in %d rounds (%d faults on %d planes)",
			rounds, totalFaults, k-1)}
}

// kuhn3 computes a maximum bipartite matching of nLeft logical wires onto
// nRight physical wires via augmenting paths, trying candidates in the
// given order (a local copy of xbar's matcher).
func kuhn3(nLeft, nRight int, ok func(l, r int) bool, order []int) ([]int, bool) {
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range order {
			if seen[r] || !ok(l, r) {
				continue
			}
			seen[r] = true
			if matchR[r] < 0 || try(matchR[r], seen) {
				matchL[l], matchR[r] = r, l
				return true
			}
		}
		return false
	}
	complete := true
	for l := 0; l < nLeft; l++ {
		if !try(l, make([]bool, nRight)) {
			complete = false
		}
	}
	return matchL, complete
}

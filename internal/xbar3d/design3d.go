// Package xbar3d represents K-layer (FLOW-3D style) crossbar designs: K
// stacked nanowire layers with a memristor device plane between each
// adjacent pair, evaluated by sneak-path reachability through devices and
// always-ON via stitches.
//
// The wire stack alternates orientation — even layers carry horizontal
// wordlines, odd layers vertical bitlines — so the footprint of the stack
// is its projection: R = max width over even layers, C = max width over
// odd layers, S = R + C. A 2-layer Design3D is exactly a 2D xbar.Design
// (Lift3D/Map3D pin the correspondence cell for cell), and K >= 3 is the
// FLOW-3D generalization that folds wordlines across layers.
package xbar3d

import (
	"fmt"
	"sync/atomic"

	"compact/internal/invariant"
	"compact/internal/wirelimit"
	"compact/internal/xbar"
)

// MaxWireLayers caps the layer count of any Design3D, wire-decoded or
// built in process. It matches labeling.MaxLayers (asserted by a test so
// the two cannot drift): no published 3D RRAM stack exceeds a handful of
// device layers.
const MaxWireLayers = 8

// WireRef addresses one nanowire in the stack: wire Index of layer Layer.
type WireRef struct {
	Layer int `json:"l"`
	Index int `json:"i"`
}

// Design3D is a complete K-layer crossbar representation of a Boolean
// function. Layer widths are per-layer wire counts; device plane d sits
// between wire layers d and d+1, so Cells[d] is Widths[d] x Widths[d+1]
// and there are len(Widths)-1 device planes.
type Design3D struct {
	// Widths[l] is the number of nanowires on wire layer l (len >= 2).
	Widths []int
	// Cells[d][r][c] is the device between wire r of layer d and wire c of
	// layer d+1. On cells are the inter-layer via stitches.
	Cells [][][]xbar.Entry
	// Input is the wire driven with Vin (an even, wordline layer).
	Input WireRef
	// Outputs holds one sensed wire per function output (entries may repeat
	// when outputs share a BDD root).
	Outputs     []WireRef
	OutputNames []string
	// VarNames names the literal variables (indexed by Entry.Var).
	VarNames []string

	// sparse caches the non-Off cells plus the largest literal variable
	// index, built lazily on first Eval exactly like xbar.Design's index;
	// Cells must not be mutated after the first Eval.
	sparse atomic.Pointer[sparseIndex3]
}

// K returns the number of wire layers.
func (d *Design3D) K() int { return len(d.Widths) }

// NumWires returns the total nanowire count across all layers.
func (d *Design3D) NumWires() int {
	n := 0
	for _, w := range d.Widths {
		n += w
	}
	return n
}

// WireID flattens a (layer, index) reference into the global wire
// numbering 0..NumWires()-1: layers are concatenated in order.
func (d *Design3D) WireID(ref WireRef) int {
	id := ref.Index
	for l := 0; l < ref.Layer; l++ {
		id += d.Widths[l]
	}
	return id
}

// NewDesign3D allocates an all-Off K-layer crossbar with the given layer
// widths (at least two layers). Every dimension is bounds-checked through
// wirelimit before any allocation sized from it — the constructor is the
// single allocation point for wire-decoded stacks, so the caps live here.
func NewDesign3D(widths []int) (*Design3D, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("xbar3d: %d wire layers (need >= 2)", len(widths))
	}
	if err := wirelimit.CheckCount("wire layers", len(widths), MaxWireLayers); err != nil {
		return nil, fmt.Errorf("xbar3d: %v", err)
	}
	for l, w := range widths {
		if err := wirelimit.CheckDim(fmt.Sprintf("layer %d width", l), w); err != nil {
			return nil, fmt.Errorf("xbar3d: %v", err)
		}
	}
	d := &Design3D{Widths: append([]int(nil), widths...)}
	d.Cells = make([][][]xbar.Entry, len(widths)-1)
	for dl := range d.Cells {
		rows, cols := widths[dl], widths[dl+1]
		if err := wirelimit.CheckCells(fmt.Sprintf("plane %d", dl), rows, cols, maxWireCells3D); err != nil {
			return nil, fmt.Errorf("xbar3d: %v", err)
		}
		plane := make([][]xbar.Entry, rows)
		backing := make([]xbar.Entry, rows*cols)
		for r := range plane {
			plane[r], backing = backing[:cols:cols], backing[cols:]
		}
		d.Cells[dl] = plane
	}
	return d, nil
}

type sparseCell3 struct {
	d, row, col int
	e           xbar.Entry
}

// sparseIndex3 mirrors xbar's sparseIndex: the non-Off cells in
// (plane, row)-major order, the largest literal variable (-1 when none)
// and the first structural corruption found while indexing.
type sparseIndex3 struct {
	cells  []sparseCell3
	maxVar int32
	err    error
}

func (d *Design3D) sparseIdx() *sparseIndex3 {
	if p := d.sparse.Load(); p != nil {
		return p
	}
	idx := &sparseIndex3{cells: []sparseCell3{}, maxVar: -1}
	if idx.err == nil {
		idx.err = d.checkShape()
	}
	for dl, plane := range d.Cells {
		for r, row := range plane {
			for c, e := range row {
				if e.Kind != xbar.Off {
					idx.cells = append(idx.cells, sparseCell3{dl, r, c, e})
				}
				if e.Kind > xbar.Lit && idx.err == nil {
					idx.err = invariant.Violationf("xbar3d.cell-kind",
						"cell (%d,%d,%d) has unknown kind %d", dl, r, c, e.Kind)
				}
				if e.Kind == xbar.Lit {
					if e.Var < 0 && idx.err == nil {
						idx.err = invariant.Violationf("xbar3d.cell-var",
							"cell (%d,%d,%d) references negative variable %d", dl, r, c, e.Var)
					}
					if e.Var > idx.maxVar {
						idx.maxVar = e.Var
					}
				}
			}
		}
	}
	d.sparse.Store(idx)
	return idx
}

// checkShape validates the structural invariants Eval relies on: layer
// count, per-plane dimensions, and in-range input/output wire references.
func (d *Design3D) checkShape() error {
	k := len(d.Widths)
	if k < 2 {
		return invariant.Violationf("xbar3d.layers", "%d wire layers (need >= 2)", k)
	}
	if len(d.Cells) != k-1 {
		return invariant.Violationf("xbar3d.planes", "%d device planes for %d wire layers", len(d.Cells), k)
	}
	for dl, plane := range d.Cells {
		if len(plane) != d.Widths[dl] {
			return invariant.Violationf("xbar3d.plane-rows",
				"plane %d has %d rows, layer width is %d", dl, len(plane), d.Widths[dl])
		}
		for r, row := range plane {
			if len(row) != d.Widths[dl+1] {
				return invariant.Violationf("xbar3d.plane-cols",
					"plane %d row %d has %d cols, layer width is %d", dl, r, len(row), d.Widths[dl+1])
			}
		}
	}
	if err := d.checkRef("input", d.Input); err != nil {
		return err
	}
	for i, o := range d.Outputs {
		if err := d.checkRef(fmt.Sprintf("output #%d", i), o); err != nil {
			return err
		}
	}
	return nil
}

func (d *Design3D) checkRef(what string, ref WireRef) error {
	if ref.Layer < 0 || ref.Layer >= len(d.Widths) {
		return invariant.Violationf("xbar3d.wire-layer",
			"%s wire layer %d outside 0..%d", what, ref.Layer, len(d.Widths)-1)
	}
	if ref.Index < 0 || ref.Index >= d.Widths[ref.Layer] {
		return invariant.Violationf("xbar3d.wire-index",
			"%s wire %d outside layer %d width %d", what, ref.Index, ref.Layer, d.Widths[ref.Layer])
	}
	return nil
}

// NumVars returns the number of assignment entries the design requires.
func (d *Design3D) NumVars() int {
	n := int(d.sparseIdx().maxVar) + 1
	if len(d.VarNames) > n {
		n = len(d.VarNames)
	}
	return n
}

// Stats3D summarizes the stack's footprint and utilization under the
// projection cost model (see the package comment).
type Stats3D struct {
	K      int   // wire layers
	Widths []int // wires per layer
	R      int   // footprint rows: max width over even layers
	C      int   // footprint cols: max width over odd layers
	S      int   // semiperimeter of the footprint
	D      int   // max footprint dimension
	Area   int   // total device-plane extent: sum of Widths[d]*Widths[d+1]
	// LitCells / OnCells / Power follow the 2D Stats semantics; OnCells
	// counts the via stitches.
	LitCells int
	OnCells  int
	Power    int
	// Delay is the 2D computation-delay proxy on the projection: one step
	// per footprint wordline to program plus one to evaluate.
	Delay int
}

// Stats computes the design's summary statistics.
func (d *Design3D) Stats() Stats3D {
	st := Stats3D{K: len(d.Widths), Widths: append([]int(nil), d.Widths...)}
	for l, w := range d.Widths {
		if l%2 == 0 {
			if w > st.R {
				st.R = w
			}
		} else if w > st.C {
			st.C = w
		}
	}
	st.S = st.R + st.C
	st.D = st.R
	if st.C > st.D {
		st.D = st.C
	}
	for dl := range d.Cells {
		st.Area += d.Widths[dl] * d.Widths[dl+1]
	}
	for _, plane := range d.Cells {
		for _, row := range plane {
			for _, e := range row {
				switch e.Kind {
				case xbar.Lit:
					st.LitCells++
				case xbar.On:
					st.OnCells++
				}
			}
		}
	}
	st.Power = st.LitCells
	st.Delay = st.R + 1
	return st
}

// Eval evaluates all outputs under the assignment by union-find
// connectivity over the global wire numbering — the scalar oracle the
// word-parallel Eval64 is fuzz-checked against. Precondition violations
// panic with the structured invariant error EvalChecked would return.
func (d *Design3D) Eval(assignment []bool) []bool {
	out, err := d.EvalChecked(assignment)
	if err != nil {
		//lint:ignore panicfree documented Eval precondition on programmer-supplied assignments; EvalChecked is the error-returning form for wire-decoded designs
		panic(err)
	}
	return out
}

// EvalChecked is Eval with preconditions checked: corrupted cells,
// malformed shapes, out-of-range wire references and short assignments
// return an *invariant.Error instead of mis-evaluating.
func (d *Design3D) EvalChecked(assignment []bool) ([]bool, error) {
	idx := d.sparseIdx()
	if idx.err != nil {
		return nil, idx.err
	}
	if int(idx.maxVar) >= len(assignment) {
		return nil, invariant.Violationf("xbar3d.eval-assignment",
			"assignment has %d entries but the design references variable %d", len(assignment), idx.maxVar)
	}
	offsets := d.layerOffsets()
	parent := make([]int, d.NumWires())
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, sc := range idx.cells {
		if sc.e.Conducts(assignment) {
			a, b := find(offsets[sc.d]+sc.row), find(offsets[sc.d+1]+sc.col)
			if a != b {
				parent[a] = b
			}
		}
	}
	in := find(d.WireID(d.Input))
	out := make([]bool, len(d.Outputs))
	for i, o := range d.Outputs {
		out[i] = find(d.WireID(o)) == in
	}
	return out, nil
}

// layerOffsets returns the global wire id of each layer's wire 0.
func (d *Design3D) layerOffsets() []int {
	offsets := make([]int, len(d.Widths))
	for l := 1; l < len(d.Widths); l++ {
		offsets[l] = offsets[l-1] + d.Widths[l-1]
	}
	return offsets
}

// RemapVars rewrites every literal cell's variable through remap and
// replaces VarNames, mirroring xbar.Design.RemapVars for the layered path
// (core remaps BDD-level variables into network-input order).
func (d *Design3D) RemapVars(remap []int, names []string) error {
	for dl, plane := range d.Cells {
		for r, row := range plane {
			for c, e := range row {
				if e.Kind != xbar.Lit {
					continue
				}
				if e.Var < 0 || int(e.Var) >= len(remap) {
					return fmt.Errorf("xbar3d: cell (%d,%d,%d) variable %d outside remap", dl, r, c, e.Var)
				}
				d.Cells[dl][r][c].Var = int32(remap[e.Var])
			}
		}
	}
	d.VarNames = names
	d.sparse.Store(nil) // invalidate the cached cell list
	return nil
}

// Clone deep-copies the design (the sparse cache is not shared).
func (d *Design3D) Clone() *Design3D {
	nd, err := NewDesign3D(d.Widths)
	if err != nil {
		//lint:ignore panicfree cloning an already-constructed design cannot fail NewDesign3D's shape checks
		panic(err)
	}
	for dl, plane := range d.Cells {
		for r, row := range plane {
			copy(nd.Cells[dl][r], row)
		}
	}
	nd.Input = d.Input
	nd.Outputs = append([]WireRef(nil), d.Outputs...)
	nd.OutputNames = append([]string(nil), d.OutputNames...)
	nd.VarNames = append([]string(nil), d.VarNames...)
	return nd
}

package xbar3d

import (
	"encoding/json"
	"fmt"

	"compact/internal/wirelimit"
	"compact/internal/xbar"
)

// The Design3D wire format (version 1)
//
// Layered designs marshal to a sparse JSON object, one cell record per
// non-Off device:
//
//	{
//	  "v": 1,
//	  "widths": [4, 3, 2],
//	  "input": {"l": 0, "i": 3},
//	  "outputs": [{"l": 0, "i": 0}, {"l": 2, "i": 1}],
//	  "output_names": ["f", "g"],
//	  "var_names": ["a", "b"],
//	  "cells": [
//	    {"d": 0, "r": 0, "c": 1, "k": "on"},
//	    {"d": 1, "r": 2, "c": 0, "k": "lit", "var": 1, "neg": true}
//	  ]
//	}
//
// "d" is the device plane (between wire layers d and d+1), "r"/"c" index
// the plane's layer-d/layer-d+1 wires, and "k"/"var"/"neg" follow the 2D
// cell encoding. UnmarshalJSON peeks every declared dimension through
// wirelimit before any dense allocation — layer count, per-layer widths,
// per-plane cell extents — so a few-byte body cannot drive the decoder
// out of memory (the repo's twice-shipped wire-OOM class), then validates
// every reference so a decoded design is structurally sound and Eval-able.

// design3DWireVersion is the current wire format version; UnmarshalJSON
// accepts exactly this value (or an absent field, treated as 1).
const design3DWireVersion = 1

// maxWireCells3D bounds the dense extent of a single device plane, the
// same cap as the 2D design decoder.
const maxWireCells3D = 1 << 31

type design3DJSON struct {
	Version     int          `json:"v"`
	Widths      []int        `json:"widths"`
	Input       WireRef      `json:"input"`
	Outputs     []WireRef    `json:"outputs"`
	OutputNames []string     `json:"output_names,omitempty"`
	VarNames    []string     `json:"var_names,omitempty"`
	Cells       []cell3DJSON `json:"cells"`
}

type cell3DJSON struct {
	D   int    `json:"d"`
	Row int    `json:"r"`
	Col int    `json:"c"`
	K   string `json:"k"`
	Var int32  `json:"var,omitempty"`
	Neg bool   `json:"neg,omitempty"`
}

// MarshalJSON encodes the design in the sparse wire format above.
func (d *Design3D) MarshalJSON() ([]byte, error) {
	dj := design3DJSON{
		Version:     design3DWireVersion,
		Widths:      d.Widths,
		Input:       d.Input,
		Outputs:     d.Outputs,
		OutputNames: d.OutputNames,
		VarNames:    d.VarNames,
		Cells:       []cell3DJSON{},
	}
	if dj.Widths == nil {
		dj.Widths = []int{}
	}
	if dj.Outputs == nil {
		dj.Outputs = []WireRef{}
	}
	for dl, plane := range d.Cells {
		for r, row := range plane {
			for c, e := range row {
				switch e.Kind {
				case xbar.Off:
				case xbar.On:
					dj.Cells = append(dj.Cells, cell3DJSON{D: dl, Row: r, Col: c, K: "on"})
				case xbar.Lit:
					dj.Cells = append(dj.Cells, cell3DJSON{D: dl, Row: r, Col: c, K: "lit", Var: e.Var, Neg: e.Neg})
				default:
					return nil, fmt.Errorf("xbar3d: cell (%d,%d,%d) has unknown kind %d", dl, r, c, e.Kind)
				}
			}
		}
	}
	return json.Marshal(dj)
}

// UnmarshalJSON decodes and validates the sparse wire format. The decoded
// design is fully usable: Eval, Stats and verification all work on it.
// Unknown wire versions and any out-of-range reference are rejected.
func (d *Design3D) UnmarshalJSON(data []byte) error {
	var dj design3DJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return fmt.Errorf("xbar3d: decoding design: %w", err)
	}
	if dj.Version == 0 {
		dj.Version = design3DWireVersion
	}
	if dj.Version != design3DWireVersion {
		return fmt.Errorf("xbar3d: unsupported design wire version %d (want %d)", dj.Version, design3DWireVersion)
	}
	// Dimension discipline: every wire-declared size is bounded before any
	// allocation sized from it. Layer count first, then each width, then
	// each plane's dense extent.
	if err := wirelimit.CheckCount("design3d layers", len(dj.Widths), MaxWireLayers); err != nil {
		return fmt.Errorf("xbar3d: %v", err)
	}
	if len(dj.Widths) < 2 {
		return fmt.Errorf("xbar3d: %d wire layers (need >= 2)", len(dj.Widths))
	}
	for l, w := range dj.Widths {
		if err := wirelimit.CheckDim(fmt.Sprintf("design3d layer %d width", l), w); err != nil {
			return fmt.Errorf("xbar3d: %v", err)
		}
	}
	total := 0
	for dl := 0; dl < len(dj.Widths)-1; dl++ {
		if err := wirelimit.CheckCells(fmt.Sprintf("design3d plane %d", dl), dj.Widths[dl], dj.Widths[dl+1], maxWireCells3D); err != nil {
			return fmt.Errorf("xbar3d: %v", err)
		}
		// The per-plane products are bounded, so the running stack total
		// cannot overflow before it trips the cap.
		total += dj.Widths[dl] * dj.Widths[dl+1]
		if total > maxWireCells3D {
			return fmt.Errorf("xbar3d: %v", &wirelimit.LimitError{What: "design3d stack cells", Got: total, Max: maxWireCells3D})
		}
	}
	nd, err := NewDesign3D(dj.Widths)
	if err != nil {
		return err
	}
	checkRef := func(what string, ref WireRef) error {
		if ref.Layer < 0 || ref.Layer >= len(dj.Widths) {
			return fmt.Errorf("xbar3d: %s wire layer %d outside 0..%d", what, ref.Layer, len(dj.Widths)-1)
		}
		if ref.Index < 0 || ref.Index >= dj.Widths[ref.Layer] {
			return fmt.Errorf("xbar3d: %s wire %d outside layer %d width %d", what, ref.Index, ref.Layer, dj.Widths[ref.Layer])
		}
		return nil
	}
	if err := checkRef("input", dj.Input); err != nil {
		return err
	}
	for i, o := range dj.Outputs {
		if err := checkRef(fmt.Sprintf("output #%d", i), o); err != nil {
			return err
		}
	}
	if len(dj.OutputNames) > 0 && len(dj.OutputNames) != len(dj.Outputs) {
		return fmt.Errorf("xbar3d: %d output names for %d outputs", len(dj.OutputNames), len(dj.Outputs))
	}
	nd.Input = dj.Input
	nd.Outputs = append([]WireRef(nil), dj.Outputs...)
	nd.OutputNames = append([]string(nil), dj.OutputNames...)
	nd.VarNames = append([]string(nil), dj.VarNames...)
	for i, c := range dj.Cells {
		if c.D < 0 || c.D >= len(nd.Cells) {
			return fmt.Errorf("xbar3d: cell #%d on plane %d outside 0..%d", i, c.D, len(nd.Cells)-1)
		}
		if c.Row < 0 || c.Row >= dj.Widths[c.D] || c.Col < 0 || c.Col >= dj.Widths[c.D+1] {
			return fmt.Errorf("xbar3d: cell #%d at (%d,%d,%d) outside plane %dx%d",
				i, c.D, c.Row, c.Col, dj.Widths[c.D], dj.Widths[c.D+1])
		}
		if nd.Cells[c.D][c.Row][c.Col].Kind != xbar.Off {
			return fmt.Errorf("xbar3d: duplicate cell at (%d,%d,%d)", c.D, c.Row, c.Col)
		}
		switch c.K {
		case "on":
			nd.Cells[c.D][c.Row][c.Col] = xbar.Entry{Kind: xbar.On}
		case "lit":
			if c.Var < 0 {
				return fmt.Errorf("xbar3d: cell #%d has negative variable %d", i, c.Var)
			}
			if len(dj.VarNames) > 0 && int(c.Var) >= len(dj.VarNames) {
				return fmt.Errorf("xbar3d: cell #%d references variable %d of %d", i, c.Var, len(dj.VarNames))
			}
			nd.Cells[c.D][c.Row][c.Col] = xbar.Entry{Kind: xbar.Lit, Var: c.Var, Neg: c.Neg}
		default:
			return fmt.Errorf("xbar3d: cell #%d has unknown kind %q", i, c.K)
		}
	}
	d.Widths = nd.Widths
	d.Cells = nd.Cells
	d.Input = nd.Input
	d.Outputs = nd.Outputs
	d.OutputNames = nd.OutputNames
	d.VarNames = nd.VarNames
	d.sparse.Store(nil) // drop any stale sparse cache from a prior decode
	return nil
}

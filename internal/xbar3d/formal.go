package xbar3d

import (
	"errors"
	"fmt"

	"compact/internal/bdd"
	"compact/internal/logic"
	"compact/internal/xbar"
)

// SymbolicOutputs3D computes the exact Boolean function each output wire
// realizes, as canonical BDDs — the symbolic sneak-path fixpoint of
// xbar.SymbolicOutputs lifted to the global wire numbering, with via
// stitches contributing always-true device predicates. nodeLimit bounds
// the BDD size (0 = default 4M).
func SymbolicOutputs3D(d *Design3D, nodeLimit int) (m *bdd.Manager, outs []bdd.Node, err error) {
	if nodeLimit <= 0 {
		nodeLimit = 4_000_000
	}
	names := d.VarNames
	if names == nil {
		return nil, nil, errors.New("xbar3d: design has no variable names")
	}
	idx := d.sparseIdx()
	if idx.err != nil {
		return nil, nil, idx.err
	}
	m = bdd.New(names)
	m.SetNodeLimit(nodeLimit)
	defer func() {
		if r := recover(); r != nil {
			m, outs, err = nil, nil, bdd.BoundaryError(r)
		}
	}()

	offsets := d.layerOffsets()
	conn := make([]bdd.Node, d.NumWires())
	for i := range conn {
		conn[i] = bdd.Zero
	}
	conn[d.WireID(d.Input)] = bdd.One

	lit := func(e xbar.Entry) bdd.Node {
		switch e.Kind {
		case xbar.On:
			return bdd.One
		case xbar.Lit:
			if e.Neg {
				return m.NVar(int(e.Var))
			}
			return m.Var(int(e.Var))
		}
		return bdd.Zero
	}
	for {
		changed := false
		for _, sc := range idx.cells {
			l := lit(sc.e)
			a, b := offsets[sc.d]+sc.row, offsets[sc.d+1]+sc.col
			if na := m.Or(conn[a], m.And(l, conn[b])); na != conn[a] {
				conn[a] = na
				changed = true
			}
			if nb := m.Or(conn[b], m.And(l, conn[a])); nb != conn[b] {
				conn[b] = nb
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	outs = make([]bdd.Node, len(d.Outputs))
	for i, o := range d.Outputs {
		outs[i] = conn[d.WireID(o)]
	}
	return m, outs, nil
}

// FormalVerify3D proves, for every input assignment, that the layered
// design computes exactly the network's functions by comparing canonical
// BDDs — the 3D counterpart of xbar.FormalVerify. The design's variables
// must be in network-input order (which core.Synthesize guarantees).
func FormalVerify3D(d *Design3D, nw *logic.Network, nodeLimit int) error {
	if len(d.VarNames) != nw.NumInputs() {
		return fmt.Errorf("xbar3d: design has %d variables, network %d inputs", len(d.VarNames), nw.NumInputs())
	}
	m, designOuts, err := SymbolicOutputs3D(d, nodeLimit)
	if err != nil {
		return fmt.Errorf("xbar3d: symbolic closure: %w", err)
	}
	refOuts, err := m.BuildRoots(nw, nil)
	if err != nil {
		return err
	}
	if len(designOuts) != len(refOuts) {
		return fmt.Errorf("xbar3d: output count mismatch: %d vs %d", len(designOuts), len(refOuts))
	}
	for o := range refOuts {
		if designOuts[o] == refOuts[o] {
			continue
		}
		diff := m.Xor(designOuts[o], refOuts[o])
		witness := m.AnySat(diff)
		return fmt.Errorf("xbar3d: output %q differs from the network, e.g. on input %v",
			nw.OutputNames[o], witness[:nw.NumInputs()])
	}
	return nil
}

package exp

import (
	"fmt"
	"math"
	"sort"

	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/magic"
)

// Fig9 reproduces the paper's Figure 9: the non-dominated (rows, columns)
// designs obtained by sweeping γ over [0, 1] on cavlc and int2float.
func Fig9(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Figure 9: non-dominated designs under gamma sweep",
		Columns: []string{"benchmark", "gamma", "rows", "cols", "dominated"},
	}
	names := []string{"cavlc", "int2float"}
	gammas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	if cfg.Quick {
		names = []string{"int2float"}
		gammas = []float64{0, 0.5, 1}
	}
	for _, name := range names {
		nw := bench.MustBuild(name)
		type pt struct {
			gamma      float64
			rows, cols int
		}
		var pts []pt
		for _, g := range gammas {
			res, err := cfg.synthesize(nw, core.Options{
				Gamma: g, GammaSet: true,
				Method:    labeling.MethodMIP,
				TimeLimit: cfg.timeLimit(),
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s γ=%v: %w", name, g, err)
			}
			st := res.Stats()
			pts = append(pts, pt{g, st.Rows, st.Cols})
			cfg.logf("fig9 %s γ=%.2f: %dx%d", name, g, st.Rows, st.Cols)
		}
		dominated := func(p pt) bool {
			for _, q := range pts {
				if (q.rows < p.rows && q.cols <= p.cols) || (q.rows <= p.rows && q.cols < p.cols) {
					return true
				}
			}
			return false
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].gamma < pts[j].gamma })
		for _, p := range pts {
			t.Rows = append(t.Rows, []string{
				name, f2(p.gamma), itoa(p.rows), itoa(p.cols), fmt.Sprintf("%v", dominated(p)),
			})
		}
	}
	return t, t.Write(cfg, "fig9")
}

// Fig10 reproduces the paper's Figure 10: the solver's convergence on i2c
// at γ = 0.5 — best integer, best bound and relative gap over time.
func Fig10(cfg Config) (*Table, error) {
	// The paper plots i2c; our solver's root relaxation on i2c-sized
	// models exceeds small budgets, leaving no curve to show, so the
	// convergence figure uses cavlc — a benchmark where the branch & bound
	// produces the full incumbent/bound/gap trajectory.
	name := "cavlc"
	t := &Table{
		Name:    fmt.Sprintf("Figure 10: solver convergence on %s (gamma = 0.5)", name),
		Columns: []string{"elapsed", "best_integer", "best_bound", "rel_gap", "nodes"},
		Notes:   []string{"the paper's Figure 10 uses i2c; see EXPERIMENTS.md for the substitution"},
	}
	nw := bench.MustBuild(name)
	res, err := cfg.synthesize(nw, core.Options{
		Method:    labeling.MethodMIP,
		TimeLimit: cfg.timeLimit(),
	})
	if err != nil {
		return nil, fmt.Errorf("fig10 %s: %w", name, err)
	}
	for _, ev := range res.Labeling.Trace {
		inc := "inf"
		if !math.IsInf(ev.Incumbent, 1) {
			inc = f2(ev.Incumbent)
		}
		t.Rows = append(t.Rows, []string{
			dur(ev.Elapsed), inc, f2(ev.Bound), f3(ev.Gap), itoa(ev.Nodes),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("final: S=%d D=%d optimal=%v", res.Stats().S, res.Stats().D, res.Labeling.Optimal))
	return t, t.Write(cfg, "fig10")
}

// fig11Set lists circuits the paper could not close within its 3-hour
// budget; we report the relative gap remaining at our (smaller) budget.
var fig11Set = []string{"c499", "c1355", "c7552", "arbiter", "priority", "i2c", "router"}

// Fig11 reproduces the paper's Figure 11: the relative gap at time-out for
// benchmarks without a proven optimum.
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Figure 11: relative gap at time-out (gamma = 0.5)",
		Columns: []string{"benchmark", "graph_nodes", "best_integer", "best_bound", "rel_gap", "optimal"},
		Notes:   []string{fmt.Sprintf("per-solve time limit %v", cfg.timeLimit())},
	}
	names := fig11Set
	if cfg.Quick {
		names = []string{"router"}
	}
	for _, name := range names {
		nw := bench.MustBuild(name)
		res, err := cfg.synthesize(nw, core.Options{
			Method:    labeling.MethodMIP,
			TimeLimit: cfg.timeLimit(),
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", name, err)
		}
		gap, bound, inc := 1.0, math.Inf(-1), math.Inf(1)
		if n := len(res.Labeling.Trace); n > 0 {
			last := res.Labeling.Trace[n-1]
			gap, bound, inc = last.Gap, last.Bound, last.Incumbent
		}
		incStr := "inf"
		if !math.IsInf(inc, 1) {
			incStr = f2(inc)
		}
		boundStr := "-inf"
		if !math.IsInf(bound, -1) {
			boundStr = f2(bound)
		}
		t.Rows = append(t.Rows, []string{
			name, itoa(res.Graph.NumNodes()), incStr, boundStr, f3(gap),
			fmt.Sprintf("%v", res.Labeling.Optimal),
		})
		cfg.logf("fig11 %s: gap=%.3f", name, gap)
	}
	return t, t.Write(cfg, "fig11")
}

// Fig12 reproduces the paper's Figure 12: normalized power and computation
// delay of COMPACT versus the staircase baseline [16]. Power is the number
// of literal-programmed memristors; delay is rows + 1 (Section VIII).
func Fig12(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Figure 12: power and delay, COMPACT vs staircase [16]",
		Columns: []string{"benchmark", "power_stair", "power_compact", "power_ratio", "delay_stair", "delay_compact", "delay_ratio"},
	}
	names := quickSubset(benchNames(), cfg.Quick)
	var powerRatios, delayRatios []float64
	for _, name := range names {
		nw := bench.MustBuild(name)
		// [16] flow: per-output ROBDDs merged by the 1-terminal. That is
		// where the paper's power gap comes from — COMPACT's shared SBDD
		// has fewer edges, hence fewer memristors to program.
		stair, _, err := staircaseBaseline(nw)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", name, err)
		}
		res, err := cfg.synthesize(nw, core.Options{TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", name, err)
		}
		ss, cs := stair.Stats(), res.Stats()
		pr := float64(cs.Power) / float64(max(1, ss.Power))
		dr := float64(cs.Delay) / float64(max(1, ss.Delay))
		powerRatios = append(powerRatios, pr)
		delayRatios = append(delayRatios, dr)
		t.Rows = append(t.Rows, []string{
			name, itoa(ss.Power), itoa(cs.Power), f3(pr),
			itoa(ss.Delay), itoa(cs.Delay), f3(dr),
		})
		cfg.logf("fig12 %s: power %.3f delay %.3f", name, pr, dr)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean power ratio %.3f, delay ratio %.3f (paper: power -19%%, delay -56%%)",
			geomean(powerRatios), geomean(delayRatios)))
	return t, t.Write(cfg, "fig12")
}

// Fig13 reproduces the paper's Figure 13: power and delay of COMPACT
// versus the MAGIC-based CONTRA baseline on the EPFL control benchmarks,
// with CONTRA's published parameters (k = 4, spacing = 6, 128x128).
func Fig13(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Figure 13: power and delay, COMPACT vs CONTRA (EPFL control)",
		Columns: []string{"benchmark", "power_contra", "power_compact", "power_ratio", "delay_contra", "delay_compact", "delay_ratio"},
	}
	var names []string
	for _, g := range bench.BySuite("epfl") {
		names = append(names, g.Name)
	}
	names = quickSubset(names, cfg.Quick)
	var powerRatios, delayRatios []float64
	for _, name := range names {
		nw := bench.MustBuild(name)
		contra, err := magic.Synthesize(nw, magic.Options{K: 4, Spacing: 6, CrossbarDim: 128})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s contra: %w", name, err)
		}
		res, err := cfg.synthesize(nw, core.Options{TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s compact: %w", name, err)
		}
		cs := res.Stats()
		pr := float64(cs.Power) / float64(max(1, contra.Ops))
		dr := float64(cs.Delay) / float64(max(1, contra.Steps))
		powerRatios = append(powerRatios, pr)
		delayRatios = append(delayRatios, dr)
		t.Rows = append(t.Rows, []string{
			name, itoa(contra.Ops), itoa(cs.Power), f3(pr),
			itoa(contra.Steps), itoa(cs.Delay), f3(dr),
		})
		cfg.logf("fig13 %s: power %.3f delay %.3f", name, pr, dr)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean power ratio %.3f, delay ratio %.3f (paper: power -55%%, delay -87%%)",
			geomean(powerRatios), geomean(delayRatios)))
	return t, t.Write(cfg, "fig13")
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(math.Max(x, 1e-12))
	}
	return math.Exp(s / float64(len(xs)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

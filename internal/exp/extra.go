package exp

import (
	"fmt"
	"time"

	"compact/internal/bdd"
	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/dnf"
	"compact/internal/espresso"
	"compact/internal/graph"
	"compact/internal/labeling"
	"compact/internal/oct"
	"compact/internal/pla"
	"compact/internal/staircase"
	"compact/internal/xbar"
)

// Baselines compares the generations of flow-based mapping on the small
// benchmarks: the DNF cube-chain style of the paper's references [7]/[11],
// the same after Espresso-style two-level minimization, the staircase BDD
// mapping of [16], and COMPACT. This reproduces the
// introduction's motivation quantitatively (it is not a numbered figure in
// the paper).
func Baselines(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Baselines: DNF [7,11] vs staircase [16] vs COMPACT",
		Columns: []string{"benchmark", "method", "rows", "cols", "S", "area", "valid"},
		Notes:   []string{"DNF designs use exhaustive minterm covers, hence only small-input circuits"},
	}
	// int2float is excluded: its exhaustive 11-input cover makes the
	// cube-chain design too large even to allocate (the guard in dnf.Map).
	names := []string{"ctrl", "dec", "cavlc"}
	if cfg.Quick {
		names = names[:2]
	}
	for _, name := range names {
		nw := bench.MustBuild(name)

		dnfDesign, err := dnf.MapNetwork(nw, 12)
		if err != nil {
			return nil, fmt.Errorf("baselines %s dnf: %w", name, err)
		}
		addDesignRow(t, name, "dnf", dnfDesign, nw)

		// The same style after two-level minimization: closer to what the
		// original DNF tools would ship, still far from BDD-based sizes.
		tab, err := pla.FromNetwork(nw, 12)
		if err != nil {
			return nil, err
		}
		minTab, err := espresso.Minimize(tab)
		if err != nil {
			return nil, fmt.Errorf("baselines %s espresso: %w", name, err)
		}
		minDesign, err := dnf.Map(minTab)
		if err != nil {
			return nil, err
		}
		addDesignRow(t, name, "dnf-minimized", minDesign, nw)

		order := bdd.DFSOrder(nw)
		m, roots, err := bdd.BuildNetwork(nw, order, 8_000_000)
		if err != nil {
			return nil, err
		}
		bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			return nil, err
		}
		stair, err := staircase.Map(bg)
		if err != nil {
			return nil, err
		}
		if err := stair.RemapVars(append([]int(nil), order...), nw.InputNames()); err != nil {
			return nil, err
		}
		addDesignRow(t, name, "staircase", stair, nw)

		res, err := cfg.synthesize(nw, core.Options{TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, err
		}
		addDesignRow(t, name, "compact", res.Design, nw)
		cfg.logf("baselines %s done", name)
	}
	return t, t.Write(cfg, "baselines")
}

func addDesignRow(t *Table, name, method string, d *xbar.Design, nw interface {
	Eval64([]uint64) []uint64
	NumInputs() int
}) {
	st := d.Stats()
	ok := d.VerifyAgainst64(nw.Eval64, nw.NumInputs(), 11, 100, 7) == nil
	t.Rows = append(t.Rows, []string{
		name, method, itoa(st.Rows), itoa(st.Cols), itoa(st.S), itoa(st.Area),
		fmt.Sprintf("%v", ok),
	})
}

// Ablations measures the design choices catalogued in DESIGN.md §5 on the
// ctrl benchmark, reporting the quality and run-time of each variant pair.
func Ablations(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Ablations (ctrl benchmark)",
		Columns: []string{"ablation", "variant", "metric", "value", "time"},
	}
	nw := bench.MustBuild("ctrl")
	order := bdd.DFSOrder(nw)
	m, roots, err := bdd.BuildNetwork(nw, order, 0)
	if err != nil {
		return nil, err
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		return nil, err
	}
	add := func(abl, variant, metric, value string, d time.Duration) {
		t.Rows = append(t.Rows, []string{abl, variant, metric, value, dur(d)})
	}

	// 1. Exact labelers at gamma = 1: same optimum, different run-time.
	for _, method := range []labeling.Method{labeling.MethodOCT, labeling.MethodMIP} {
		start := time.Now()
		sol, err := labeling.SolveContext(cfg.context(), bg.Problem(false), labeling.Options{
			Method: method, Gamma: 1, TimeLimit: cfg.timeLimit(),
		})
		if err != nil {
			return nil, err
		}
		add("labeler@γ=1", method.String(), "S", itoa(sol.Stats.S), time.Since(start))
	}

	// 2. Eq. 4 edge helpers vs the helper-free formulation.
	for _, helpers := range []bool{false, true} {
		variant := "helper-free"
		if helpers {
			variant = "eq4-helpers"
		}
		start := time.Now()
		sol, err := labeling.SolveContext(cfg.context(), bg.Problem(true), labeling.Options{
			Method: labeling.MethodMIP, Gamma: 0.5,
			TimeLimit: cfg.timeLimit(), UseEdgeHelpers: helpers,
		})
		if err != nil {
			return nil, err
		}
		add("MIP formulation", variant, fmt.Sprintf("objective (opt=%v)", sol.Optimal),
			f2(sol.Stats.Objective(0.5)), time.Since(start))
	}

	// 3. Nemhauser–Trotter kernel on/off for the OCT vertex cover.
	p := bg.G.CartesianK2()
	for _, disable := range []bool{false, true} {
		variant := "kernel-on"
		if disable {
			variant = "kernel-off"
		}
		start := time.Now()
		res := graph.MinVertexCoverContext(cfg.context(), p, graph.VCOptions{TimeLimit: cfg.timeLimit(), DisableKernel: disable})
		add("NT kernelization", variant, fmt.Sprintf("|VC| (opt=%v)", res.Optimal),
			itoa(len(res.Cover)), time.Since(start))
	}

	// 4. OCT backends.
	for _, backend := range []oct.Backend{oct.BackendBB, oct.BackendILP} {
		variant := "branch-and-bound"
		if backend == oct.BackendILP {
			variant = "ilp"
		}
		start := time.Now()
		res, err := oct.FindContext(cfg.context(), bg.G, oct.Options{Backend: backend, TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, err
		}
		add("OCT backend", variant, fmt.Sprintf("k (opt=%v)", res.Optimal),
			itoa(len(res.OCT)), time.Since(start))
	}

	// 5. SBDD vs per-output ROBDDs through the whole pipeline.
	for _, kind := range []core.BDDKind{core.SBDD, core.SeparateROBDDs} {
		start := time.Now()
		res, err := cfg.synthesize(nw, core.Options{BDDKind: kind, Method: labeling.MethodHeuristic})
		if err != nil {
			return nil, err
		}
		add("BDD kind", kind.String(), "S", itoa(res.Stats().S), time.Since(start))
	}

	// 6. Alignment constraints on/off (labeling quality only).
	for _, align := range []bool{true, false} {
		variant := "aligned"
		if !align {
			variant = "unaligned"
		}
		start := time.Now()
		sol, err := labeling.SolveContext(cfg.context(), bg.Problem(align), labeling.Options{
			Method: labeling.MethodMIP, Gamma: 0.5, TimeLimit: cfg.timeLimit(),
		})
		if err != nil {
			return nil, err
		}
		add("alignment (Eq. 7)", variant, "S", itoa(sol.Stats.S), time.Since(start))
	}
	return t, t.Write(cfg, "ablations")
}

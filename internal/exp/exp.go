// Package exp regenerates every table and figure of the COMPACT paper's
// experimental evaluation (Section VIII) on this repository's benchmark
// circuits. Each experiment returns typed rows, and can render them as an
// aligned text table and a CSV file under the configured output directory.
// The per-experiment mapping to the paper is catalogued in DESIGN.md §4 and
// the measured-vs-paper comparison in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
)

// Config tunes experiment scope and budgets.
type Config struct {
	// Ctx cancels in-flight experiments cooperatively (nil means
	// background); each synthesis derives its per-solve deadline from it.
	Ctx context.Context
	// TimeLimit bounds each exact labeling solve (default 60s).
	TimeLimit time.Duration
	// OutDir receives CSV and text renderings; empty disables writing.
	OutDir string
	// Quick shrinks benchmark sets and budgets for smoke runs and the
	// testing.B benchmarks.
	Quick bool
	// Verbose echoes progress to stderr.
	Verbose bool
}

func (c Config) timeLimit() time.Duration {
	if c.TimeLimit > 0 {
		return c.TimeLimit
	}
	if c.Quick {
		return 5 * time.Second
	}
	return 60 * time.Second
}

func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// synthesize runs core.SynthesizeContext under the experiment's context, so
// an interrupted harness stops between (and inside) solves.
func (c Config) synthesize(nw *logic.Network, opts core.Options) (*core.Result, error) {
	return core.SynthesizeContext(c.context(), nw, opts)
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// Table is a generic rendered experiment result.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes an aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Name)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
		_ = i
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, cell := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		esc := make([]string, len(r))
		for i, cell := range r {
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			esc[i] = cell
		}
		b.WriteString(strings.Join(esc, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Write stores the text and CSV renderings under cfg.OutDir (no-op when
// OutDir is empty).
func (t *Table) Write(cfg Config, baseName string) error {
	if cfg.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(cfg.OutDir, baseName+".txt"), []byte(t.Render()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.OutDir, baseName+".csv"), []byte(t.CSV()), 0o644)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func dur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

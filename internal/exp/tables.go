package exp

import (
	"fmt"
	"time"

	"compact/internal/bdd"
	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/staircase"
	"compact/internal/xbar"
)

// table2Set lists the circuits the paper's Table II reports (those its
// solver closed within the 3-hour budget); ours use cfg.TimeLimit.
var table2Set = []string{"cavlc", "ctrl", "dec", "int2float", "priority", "router"}

// table3Set lists multi-output circuits for the SBDD-vs-ROBDDs comparison.
var table3Set = []string{"c432", "c880", "c1908", "c3540", "cavlc", "ctrl", "dec", "i2c", "int2float", "router"}

func quickSubset(names []string, quick bool) []string {
	if !quick {
		return names
	}
	keep := map[string]bool{"ctrl": true, "int2float": true, "cavlc": true, "router": true}
	var out []string
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = names[:1]
	}
	return out
}

// Table1 reproduces the paper's Table I: benchmark properties (inputs,
// outputs, shared-BDD nodes and edges).
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Table I: benchmark properties",
		Columns: []string{"benchmark", "suite", "inputs", "outputs", "nodes", "edges"},
		Notes: []string{
			"nodes/edges are SBDD counts under the DFS variable order (terminals included)",
			"circuits are behavioural stand-ins with the paper's I/O signature (DESIGN.md §2)",
		},
	}
	gens := bench.All()
	if cfg.Quick {
		gens = gens[:4]
	}
	for _, g := range gens {
		nw := g.Build()
		order := bdd.DFSOrder(nw)
		m, roots, err := bdd.BuildNetwork(nw, order, 8_000_000)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", g.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			g.Name, g.Suite,
			itoa(nw.NumInputs()), itoa(nw.NumOutputs()),
			itoa(m.CountNodes(roots...)), itoa(m.CountEdges(roots...)),
		})
		cfg.logf("table1 %s done", g.Name)
	}
	return t, t.Write(cfg, "table1")
}

// Table2 reproduces the γ sweep of the paper's Table II: rows, columns,
// maximum dimension, semiperimeter and synthesis time for γ ∈ {0, 0.5, 1}.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Table II: effect of gamma (MIP labeler)",
		Columns: []string{"benchmark", "gamma", "rows", "cols", "D", "S", "optimal", "synthesis"},
		Notes: []string{
			fmt.Sprintf("per-solve time limit %v; the paper used 3 hours of CPLEX", cfg.timeLimit()),
		},
	}
	for _, name := range quickSubset(table2Set, cfg.Quick) {
		nw := bench.MustBuild(name)
		for _, gamma := range []float64{0, 0.5, 1} {
			res, err := cfg.synthesize(nw, core.Options{
				Gamma: gamma, GammaSet: true,
				Method:    labeling.MethodMIP,
				TimeLimit: cfg.timeLimit(),
			})
			if err != nil {
				return nil, fmt.Errorf("table2 %s γ=%v: %w", name, gamma, err)
			}
			st := res.Stats()
			t.Rows = append(t.Rows, []string{
				name, f2(gamma),
				itoa(st.Rows), itoa(st.Cols), itoa(st.D), itoa(st.S),
				fmt.Sprintf("%v", res.Labeling.Optimal), dur(res.SynthTime),
			})
			cfg.logf("table2 %s γ=%v: S=%d D=%d opt=%v", name, gamma, st.S, st.D, res.Labeling.Optimal)
		}
	}
	return t, t.Write(cfg, "table2")
}

// Table3 reproduces the paper's Table III: hardware utilization for
// per-output ROBDDs merged by the 1-terminal versus one shared SBDD.
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Table III: multiple ROBDDs vs single SBDD (gamma = 0.5)",
		Columns: []string{"benchmark", "kind", "nodes", "rows", "cols", "D", "S", "synthesis"},
		Notes:   []string{"labeling via the heuristic solver so both sides get identical treatment"},
	}
	for _, name := range quickSubset(table3Set, cfg.Quick) {
		nw := bench.MustBuild(name)
		for _, kind := range []core.BDDKind{core.SeparateROBDDs, core.SBDD} {
			res, err := cfg.synthesize(nw, core.Options{
				Method:  labeling.MethodHeuristic,
				BDDKind: kind,
			})
			if err != nil {
				return nil, fmt.Errorf("table3 %s %v: %w", name, kind, err)
			}
			st := res.Stats()
			t.Rows = append(t.Rows, []string{
				name, kind.String(),
				itoa(res.BDDNodes), itoa(st.Rows), itoa(st.Cols), itoa(st.D), itoa(st.S),
				dur(res.SynthTime),
			})
			cfg.logf("table3 %s %v: nodes=%d S=%d", name, kind, res.BDDNodes, st.S)
		}
	}
	return t, t.Write(cfg, "table3")
}

// Table4 reproduces the paper's Table IV: COMPACT (γ = 0.5) versus the
// staircase mapping of prior work [16] across all benchmarks, including a
// functional validation of every produced design.
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Table IV: COMPACT vs staircase baseline [16]",
		Columns: []string{"benchmark", "method", "nodes", "rows", "cols", "D", "S", "area", "valid", "synthesis"},
		Notes: []string{
			"COMPACT: exact MIP for graphs within the auto limit, heuristic beyond",
			"valid: design checked against the network on sampled/exhaustive vectors",
		},
	}
	names := quickSubset(benchNames(), cfg.Quick)
	for _, name := range names {
		nw := bench.MustBuild(name)

		// Baseline: the prior-work flow of [16] — one ROBDD per output,
		// merged by the 1-terminal, staircase-mapped.
		start := time.Now()
		stairDesign, nodes, err := staircaseBaseline(nw)
		if err != nil {
			return nil, fmt.Errorf("table4 %s staircase: %w", name, err)
		}
		stairTime := time.Since(start)
		stairOK := stairDesign.VerifyAgainst64(nw.Eval64, nw.NumInputs(), 11, verifySamples(cfg), 7) == nil
		st := stairDesign.Stats()
		t.Rows = append(t.Rows, []string{
			name, "staircase", itoa(nodes),
			itoa(st.Rows), itoa(st.Cols), itoa(st.D), itoa(st.S), itoa(st.Area),
			fmt.Sprintf("%v", stairOK), dur(stairTime),
		})

		// COMPACT.
		res, err := cfg.synthesize(nw, core.Options{TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, fmt.Errorf("table4 %s compact: %w", name, err)
		}
		ok := res.Verify(11, verifySamples(cfg), 7) == nil
		cst := res.Stats()
		t.Rows = append(t.Rows, []string{
			name, "compact", itoa(res.BDDNodes),
			itoa(cst.Rows), itoa(cst.Cols), itoa(cst.D), itoa(cst.S), itoa(cst.Area),
			fmt.Sprintf("%v", ok), dur(res.SynthTime),
		})
		cfg.logf("table4 %s: staircase S=%d vs compact S=%d", name, st.S, cst.S)
	}
	return t, t.Write(cfg, "table4")
}

// staircaseBaseline builds the [16]-style design: per-output ROBDDs merged
// by the shared 1-terminal, every node on one wordline and (if it has a
// parent) one bitline. Returns the design plus the merged node count using
// the Table I convention (0-terminal re-added).
func staircaseBaseline(nw *logic.Network) (*xbar.Design, int, error) {
	order := bdd.DFSOrder(nw)
	singles, err := bdd.BuildSeparate(nw, order, 8_000_000)
	if err != nil {
		return nil, 0, err
	}
	bg, err := xbar.FromSeparate(singles, nw.InputNames())
	if err != nil {
		return nil, 0, err
	}
	d, err := staircase.Map(bg)
	if err != nil {
		return nil, 0, err
	}
	return d, bg.NumNodes() + 1, nil
}

func verifySamples(cfg Config) int {
	if cfg.Quick {
		return 50
	}
	return 200
}

func benchNames() []string {
	var out []string
	for _, g := range bench.All() {
		out = append(out, g.Name)
	}
	return out
}

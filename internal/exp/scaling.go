package exp

import (
	"fmt"

	"compact/internal/bdd"
	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/staircase"
	"compact/internal/xbar"
)

// Scaling measures how the crossbar semiperimeter grows with the BDD graph
// size on parametric circuit families, the direct test of the paper's
// Section VIII-D observation that COMPACT's semiperimeter is ≈1.11·n while
// the staircase baseline's is ≈1.90·n.
func Scaling(cfg Config) (*Table, error) {
	t := &Table{
		Name:    "Scaling: semiperimeter growth vs graph size (S = c*n)",
		Columns: []string{"circuit", "graph_n", "S_compact", "ratio_compact", "S_staircase", "ratio_staircase"},
		Notes:   []string{"paper: COMPACT ≈ 1.11n, staircase [16] ≈ 1.90n"},
	}
	specs := []string{
		"adder:4", "adder:8", "adder:16", "adder:32",
		"comparator:8", "comparator:16", "comparator:32",
		"priority:16", "priority:32", "priority:64",
		"decoder:4", "decoder:6", "decoder:8",
		"majority:7", "majority:11", "majority:15",
	}
	if cfg.Quick {
		specs = []string{"adder:4", "comparator:8", "priority:16", "decoder:4"}
	}
	var sumCompact, sumStair float64
	for _, spec := range specs {
		nw, err := bench.Parametric(spec)
		if err != nil {
			return nil, err
		}
		order := bdd.DFSOrder(nw)
		m, roots, err := bdd.BuildNetwork(nw, order, 8_000_000)
		if err != nil {
			return nil, fmt.Errorf("scaling %s: %w", spec, err)
		}
		bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			return nil, err
		}
		stair, err := staircase.Map(bg)
		if err != nil {
			return nil, err
		}
		res, err := cfg.synthesize(nw, core.Options{TimeLimit: cfg.timeLimit()})
		if err != nil {
			return nil, fmt.Errorf("scaling %s: %w", spec, err)
		}
		n := float64(bg.NumNodes())
		rc := float64(res.Stats().S) / n
		rs := float64(stair.Stats().S) / n
		sumCompact += rc
		sumStair += rs
		t.Rows = append(t.Rows, []string{
			spec, itoa(bg.NumNodes()),
			itoa(res.Stats().S), f3(rc),
			itoa(stair.Stats().S), f3(rs),
		})
		cfg.logf("scaling %s: compact %.3f, staircase %.3f", spec, rc, rs)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean ratios: compact %.3f, staircase %.3f",
		sumCompact/float64(len(specs)), sumStair/float64(len(specs))))
	return t, t.Write(cfg, "scaling")
}

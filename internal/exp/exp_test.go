package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	return Config{Quick: true, TimeLimit: 3 * time.Second, OutDir: t.TempDir()}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Name:    "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "x"}, {"22", "value,with,commas"}},
		Notes:   []string{"a note"},
	}
	text := tab.Render()
	for _, frag := range []string{"demo", "long_column", "22", "note: a note"} {
		if !strings.Contains(text, frag) {
			t.Errorf("render missing %q:\n%s", frag, text)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"value,with,commas"`) {
		t.Errorf("CSV escaping broken:\n%s", csv)
	}
}

func TestTableWrite(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{Name: "w", Columns: []string{"x"}, Rows: [][]string{{"1"}}}
	if err := tab.Write(Config{OutDir: dir}, "w"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"w.txt", "w.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
	// Empty OutDir is a no-op.
	if err := tab.Write(Config{}, "w"); err != nil {
		t.Errorf("no-op write failed: %v", err)
	}
}

func TestTable1Quick(t *testing.T) {
	tab, err := Table1(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// First row is c432 with the paper's I/O.
	if tab.Rows[0][0] != "c432" || tab.Rows[0][2] != "36" || tab.Rows[0][3] != "7" {
		t.Errorf("c432 row wrong: %v", tab.Rows[0])
	}
}

func TestTable2Quick(t *testing.T) {
	tab, err := Table2(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows)%3 != 0 {
		t.Errorf("expected 3 gamma rows per benchmark, got %d rows", len(tab.Rows))
	}
}

func TestTable3Quick(t *testing.T) {
	tab, err := Table3(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (robdds, sbdd) pairs; SBDD nodes must never exceed
	// merged ROBDD nodes.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		if tab.Rows[i][1] != "robdds" || tab.Rows[i+1][1] != "sbdd" {
			t.Fatalf("row pairing broken at %d: %v / %v", i, tab.Rows[i], tab.Rows[i+1])
		}
	}
}

func TestTable4Quick(t *testing.T) {
	tab, err := Table4(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		stair, compact := tab.Rows[i], tab.Rows[i+1]
		if stair[1] != "staircase" || compact[1] != "compact" {
			t.Fatalf("row pairing broken at %d", i)
		}
		if stair[8] != "true" || compact[8] != "true" {
			t.Errorf("%s: design not valid: stair=%s compact=%s", stair[0], stair[8], compact[8])
		}
		if atoiOr(compact[6], 1<<30) > atoiOr(stair[6], 0) {
			t.Errorf("%s: COMPACT S (%s) worse than staircase (%s)", stair[0], compact[6], stair[6])
		}
	}
}

func TestFig9Quick(t *testing.T) {
	tab, err := Fig9(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig10Quick(t *testing.T) {
	tab, err := Fig10(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 1 {
		t.Fatal("no trace rows")
	}
}

func TestFig11Quick(t *testing.T) {
	tab, err := Fig11(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		gap := r[4]
		if gap == "" {
			t.Errorf("missing gap in %v", r)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	tab, err := Fig12(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// COMPACT delay (rows+1) must never exceed the staircase's (which has
	// a row per node).
	for _, r := range tab.Rows {
		if atoiOr(r[5], 1<<30) > atoiOr(r[4], 0) {
			t.Errorf("%s: compact delay %s > staircase %s", r[0], r[5], r[4])
		}
	}
}

func TestFig13Quick(t *testing.T) {
	tab, err := Fig13(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func atoiOr(s string, def int) int {
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		v = v*10 + int(c-'0')
	}
	return v
}

func TestBaselinesQuick(t *testing.T) {
	tab, err := Baselines(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (dnf, dnf-minimized, staircase, compact) quadruples;
	// every design valid, COMPACT never larger than any baseline, and
	// minimization never hurts the DNF design.
	if len(tab.Rows)%4 != 0 {
		t.Fatalf("expected row quadruples, got %d rows", len(tab.Rows))
	}
	for i := 0; i+3 < len(tab.Rows); i += 4 {
		d, dm, s, c := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2], tab.Rows[i+3]
		for _, r := range [][]string{d, dm, s, c} {
			if r[6] != "true" {
				t.Errorf("%s/%s: invalid design", r[0], r[1])
			}
		}
		cs, ds, dms, ss := atoiOr(c[4], 1<<30), atoiOr(d[4], 0), atoiOr(dm[4], 0), atoiOr(s[4], 0)
		if cs > ds || cs > ss || cs > dms {
			t.Errorf("%s: compact S=%d not minimal (dnf %d, dnf-min %d, staircase %d)", c[0], cs, ds, dms, ss)
		}
		if dms > ds {
			t.Errorf("%s: minimization grew the DNF design %d -> %d", d[0], ds, dms)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	tab, err := Ablations(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("only %d ablation rows", len(tab.Rows))
	}
}

func TestScalingQuick(t *testing.T) {
	tab, err := Scaling(quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		rc, rs := r[3], r[5]
		// COMPACT's ratio must be at least 1 (S >= n) and strictly below
		// the staircase's on every circuit.
		if rc < "1" {
			t.Errorf("%s: compact ratio %s < 1", r[0], rc)
		}
		if rc >= rs {
			t.Errorf("%s: compact ratio %s not below staircase %s", r[0], rc, rs)
		}
	}
}

package oct

import (
	"math/rand"
	"testing"
	"time"

	"compact/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// bruteMinOCT finds the true minimum OCT size by enumeration.
func bruteMinOCT(g *graph.Graph) int {
	n := g.N()
	for k := 0; k <= n; k++ {
		if tryK(g, k, 0, map[int]bool{}) {
			return k
		}
	}
	return n
}

func tryK(g *graph.Graph, k, from int, removed map[int]bool) bool {
	sub, _ := g.RemoveVertices(removed)
	if sub.IsBipartite() {
		return true
	}
	if k == 0 {
		return false
	}
	for v := from; v < g.N(); v++ {
		if removed[v] {
			continue
		}
		removed[v] = true
		if tryK(g, k-1, v+1, removed) {
			delete(removed, v)
			return true
		}
		delete(removed, v)
	}
	return false
}

func TestBipartiteGraphEmptyOCT(t *testing.T) {
	res, err := Find(cycle(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OCT) != 0 || !res.Optimal {
		t.Errorf("C8 OCT = %v", res.OCT)
	}
	if !Verify(cycle(8), res) {
		t.Error("verify failed")
	}
}

func TestOddCycleOCT(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9} {
		g := cycle(n)
		res, err := Find(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.OCT) != 1 || !res.Optimal {
			t.Errorf("C%d: OCT size %d, want 1", n, len(res.OCT))
		}
		if !Verify(g, res) {
			t.Errorf("C%d: invalid result", n)
		}
	}
}

func TestCompleteGraphOCT(t *testing.T) {
	// K_n needs n-2 removals to become bipartite.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
		}
	}
	res, err := Find(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OCT) != 4 || !res.Optimal {
		t.Errorf("K6: OCT size %d, want 4", len(res.OCT))
	}
}

func TestFindMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 9, 0.3)
		res, err := Find(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d: not optimal", trial)
		}
		if !Verify(g, res) {
			t.Fatalf("trial %d: invalid OCT", trial)
		}
		if want := bruteMinOCT(g); len(res.OCT) != want {
			t.Fatalf("trial %d: OCT size %d, want %d", trial, len(res.OCT), want)
		}
	}
}

func TestILPBackendAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 8, 0.35)
		a, errA := Find(g, Options{Backend: BackendBB})
		b, errB := Find(g, Options{Backend: BackendILP})
		if errA != nil || errB != nil {
			t.Fatalf("trial %d: Find errors: %v / %v", trial, errA, errB)
		}
		if !Verify(g, a) || !Verify(g, b) {
			t.Fatalf("trial %d: invalid result", trial)
		}
		if a.Optimal && b.Optimal && len(a.OCT) != len(b.OCT) {
			t.Fatalf("trial %d: backends disagree: %d vs %d", trial, len(a.OCT), len(b.OCT))
		}
	}
}

func TestHeuristicValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 30, 0.15)
		res := Heuristic(g)
		if !Verify(g, res) {
			t.Fatalf("trial %d: heuristic OCT invalid", trial)
		}
		// Heuristic should be within a reasonable factor on these sizes;
		// at minimum it must never exceed n.
		if len(res.OCT) > g.N() {
			t.Fatalf("trial %d: absurd OCT size", trial)
		}
	}
}

func TestHeuristicOnOddCycle(t *testing.T) {
	res := Heuristic(cycle(7))
	if !Verify(cycle(7), res) {
		t.Fatal("invalid")
	}
	if len(res.OCT) != 1 {
		t.Errorf("heuristic OCT on C7 = %d, want 1 (pruning should reach it)", len(res.OCT))
	}
}

func TestTimeLimitStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := randomGraph(rng, 60, 0.2)
	res, err := Find(g, Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(g, res) {
		t.Fatal("time-limited OCT invalid")
	}
}

func TestVerifyCatchesBadColoring(t *testing.T) {
	g := cycle(4)
	bad := Result{OCT: map[int]bool{}, Side: []int{0, 0, 1, 1}}
	if Verify(g, bad) {
		t.Error("invalid coloring accepted")
	}
}

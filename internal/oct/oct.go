// Package oct computes odd cycle transversals (OCTs): vertex sets whose
// removal makes a graph bipartite. Following Lemma 1 of the COMPACT paper,
// a minimum OCT of G is obtained from a minimum vertex cover of the
// Cartesian product G □ K2: a vertex belongs to the OCT iff both of its
// product copies are in the cover. The residual 2-coloring also falls out
// of the cover for free.
//
// Two exact backends are provided — the specialized combinatorial
// branch & bound from package graph, and the general ILP formulation solved
// by package ilp (the route the paper takes with CPLEX) — plus a greedy
// heuristic for graphs beyond exact reach.
package oct

import (
	"context"
	"time"

	"compact/internal/graph"
	"compact/internal/ilp"
	"compact/internal/invariant"
)

// Backend selects the minimum-vertex-cover engine.
type Backend uint8

// Backends.
const (
	BackendBB  Backend = iota // combinatorial branch & bound (default)
	BackendILP                // 0-1 ILP via package ilp
)

// Options tunes Find.
type Options struct {
	Backend   Backend
	TimeLimit time.Duration // zero = unlimited
}

// Result is an odd cycle transversal plus the residual 2-coloring.
type Result struct {
	// OCT is the transversal vertex set.
	OCT map[int]bool
	// Side assigns every non-OCT vertex 0 or 1 such that no edge of G-OCT
	// joins equal sides; OCT vertices carry -1.
	Side []int
	// Optimal reports whether minimality was proven.
	Optimal bool
}

// Find computes an odd cycle transversal of g. Without a time limit the
// result is a minimum OCT; with one, it is a valid OCT that may be larger.
// The residual-bipartiteness postcondition is re-verified on every exit; a
// violation (an invariant.Error) means a solver bug, not bad input.
func Find(g *graph.Graph, opts Options) (Result, error) {
	return FindContext(context.Background(), g, opts)
}

// FindContext is Find with cooperative cancellation: the vertex-cover
// search honors the earlier of ctx's deadline and opts.TimeLimit, and a
// cancelled ctx degrades to the best valid OCT found so far. A context that
// is already dead on entry returns (Result{}, ctx.Err()).
func FindContext(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var res Result
	if g.IsBipartite() {
		color, _ := g.TwoColor()
		res = Result{OCT: map[int]bool{}, Side: color, Optimal: true}
	} else {
		p := g.CartesianK2()
		var cover map[int]bool
		var optimal bool
		switch opts.Backend {
		case BackendILP:
			cover, optimal = coverILP(ctx, p, opts.TimeLimit)
		default:
			r := graph.MinVertexCoverContext(ctx, p, graph.VCOptions{TimeLimit: opts.TimeLimit})
			cover, optimal = r.Cover, r.Optimal
		}
		res = fromCover(g, cover, optimal)
	}
	if err := invariant.ResidualBipartite(g, res.OCT, res.Side); err != nil {
		return Result{}, err
	}
	return res, nil
}

// fromCover converts a vertex cover of G □ K2 into an OCT and 2-coloring.
func fromCover(g *graph.Graph, cover map[int]bool, optimal bool) Result {
	n := g.N()
	oct := make(map[int]bool)
	side := make([]int, n)
	for v := 0; v < n; v++ {
		in0, in1 := cover[v], cover[v+n]
		switch {
		case in0 && in1:
			oct[v] = true
			side[v] = -1
		case in0:
			side[v] = 0
		case in1:
			side[v] = 1
		default:
			// Rung edge (v, v+n) uncovered: cover invalid. Be defensive
			// and place v on side 0; Verify will catch real breakage.
			side[v] = 0
		}
	}
	res := Result{OCT: oct, Side: side, Optimal: optimal}
	if !Verify(g, res) {
		// A correct cover always verifies (see the paper's proof); a
		// timed-out heuristic cover may not. Fall back to the greedy OCT.
		return Heuristic(g)
	}
	return res
}

// coverILP solves minimum vertex cover on p as a 0-1 program, primed with
// the greedy cover as incumbent.
func coverILP(ctx context.Context, p *graph.Graph, limit time.Duration) (map[int]bool, bool) {
	m := ilp.NewModel("vertex-cover")
	for v := 0; v < p.N(); v++ {
		m.AddVar("x", 0, 1, ilp.Binary, 1)
	}
	for _, e := range p.Edges() {
		m.AddConstr("cover", []ilp.Term{{Var: e[0], Coeff: 1}, {Var: e[1], Coeff: 1}}, ilp.GE, 1)
	}
	greedy := graph.GreedyVertexCover(p)
	inc := make([]float64, p.N())
	for v := range greedy {
		inc[v] = 1
	}
	sol, err := ilp.SolveContext(ctx, m, ilp.Options{
		TimeLimit: limit, Incumbent: inc, Workers: ilp.DefaultWorkers(),
	})
	if err != nil || sol.X == nil {
		return greedy, false
	}
	cover := make(map[int]bool)
	for v, x := range sol.X {
		if x > 0.5 {
			cover[v] = true
		}
	}
	if !p.VerifyVertexCover(cover) {
		return greedy, false
	}
	return cover, sol.Status == ilp.StatusOptimal
}

// DisjointOddCycles greedily packs vertex-disjoint odd cycles. The number
// of cycles is a lower bound on the minimum OCT size (each needs its own
// transversal vertex), which the MIP labeler turns into valid cuts.
func DisjointOddCycles(g *graph.Graph) [][]int {
	removed := make(map[int]bool)
	var cycles [][]int
	for {
		sub, orig := g.RemoveVertices(removed)
		cyc := sub.OddCycle()
		if cyc == nil {
			return cycles
		}
		mapped := make([]int, len(cyc))
		for i, v := range cyc {
			mapped[i] = orig[v]
			removed[orig[v]] = true
		}
		cycles = append(cycles, mapped)
	}
}

// Verify reports whether res.OCT is a genuine odd cycle transversal of g
// and res.Side a proper 2-coloring of the residual graph.
func Verify(g *graph.Graph, res Result) bool {
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if res.OCT[u] || res.OCT[v] {
			continue
		}
		if res.Side[u] == res.Side[v] {
			return false
		}
		if res.Side[u] < 0 || res.Side[v] < 0 {
			return false
		}
	}
	return true
}

// Heuristic computes a (not necessarily minimum) OCT greedily: BFS
// 2-coloring that moves conflict vertices into the transversal, followed by
// a pruning pass that re-admits unnecessary transversal vertices.
func Heuristic(g *graph.Graph) Result {
	oct := make(map[int]bool)
	// Order vertices by descending degree: high-degree vertices are more
	// likely to close odd cycles, so resolving conflicts at them first
	// keeps the transversal small.
	side := colorGreedy(g, oct)
	// Prune: try returning each OCT vertex (ascending degree) if the
	// residual graph stays bipartite.
	verts := make([]int, 0, len(oct))
	for v := range oct {
		verts = append(verts, v)
	}
	sortByDegree(g, verts)
	for _, v := range verts {
		delete(oct, v)
		if s := tryColor(g, oct); s != nil {
			side = s
		} else {
			oct[v] = true
		}
	}
	for v := range oct {
		side[v] = -1
	}
	return Result{OCT: oct, Side: side, Optimal: len(oct) == 0}
}

func sortByDegree(g *graph.Graph, vs []int) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && g.Degree(vs[j]) < g.Degree(vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// colorGreedy BFS-colors g, pushing conflicting vertices into oct.
func colorGreedy(g *graph.Graph, oct map[int]bool) []int {
	n := g.N()
	side := make([]int, n)
	for i := range side {
		side[i] = -2 // uncolored
	}
	for s := 0; s < n; s++ {
		if side[s] != -2 || oct[s] {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if oct[u] {
				continue
			}
			for _, v := range g.Adj(u) {
				if oct[v] {
					continue
				}
				if side[v] == -2 {
					side[v] = 1 - side[u]
					queue = append(queue, v)
				} else if side[v] == side[u] {
					// Conflict: move v into the OCT.
					oct[v] = true
					side[v] = -1
				}
			}
		}
	}
	return side
}

// tryColor 2-colors g minus oct, returning nil if not bipartite.
func tryColor(g *graph.Graph, oct map[int]bool) []int {
	n := g.N()
	side := make([]int, n)
	for i := range side {
		side[i] = -2
	}
	for s := 0; s < n; s++ {
		if side[s] != -2 || oct[s] {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj(u) {
				if oct[v] {
					continue
				}
				if side[v] == -2 {
					side[v] = 1 - side[u]
					queue = append(queue, v)
				} else if side[v] == side[u] {
					return nil
				}
			}
		}
	}
	for v := range oct {
		side[v] = -1
	}
	return side
}

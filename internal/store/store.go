// Package store is compactd's disk tier: a content-addressed store of
// marshaled result bodies that survives process restarts, layered under
// the in-memory LRU in internal/server. Keys are the server's cache keys
// ("fingerprint|optionskey"); bodies are the exact response bytes served
// to clients, so a disk-tier hit is byte-identical to the solve that
// populated it — across restarts, and across fleet members sharing a
// directory.
//
// Durability contract:
//
//   - Writes are atomic: every entry is encoded into a temp file in the
//     store directory and renamed into place, so a crash mid-write can
//     leave a stray temp file but never a half-visible entry.
//   - Opens are corruption-tolerant: entries that fail to decode (bad
//     magic, truncated, checksum mismatch, digest/key disagreement) are
//     quarantined — moved into a quarantine/ subdirectory for post-mortem
//     rather than deleted — and the store opens with the survivors.
//   - The store is size-bounded: inserting past MaxBytes evicts
//     least-recently-used entries (recency is approximated by file mtime
//     across restarts, exact within a process).
//
// The on-disk entry format is versioned and self-checking (see
// EncodeEntry/DecodeEntry) and fuzzed by FuzzStoreEntry.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"compact/internal/wirelimit"
)

// Entry wire format v1:
//
//	magic   [6]byte  "CSTE1\n"
//	crc     uint32   little-endian IEEE CRC of everything after this field
//	keyLen  uvarint
//	bodyLen uvarint
//	key     [keyLen]byte
//	body    [bodyLen]byte
//
// The lengths are wire-declared sizes and are bounds-checked against
// MaxKeyLen / MaxBodyLen before any allocation; the encoded form must be
// consumed exactly (trailing bytes are corruption).
const (
	entryMagic = "CSTE1\n"
	// MaxKeyLen bounds the stored cache key. Server keys are two fixed
	// hashes plus a separator (~130 bytes); 4 KiB leaves headroom for
	// future key schemes without admitting absurd allocations.
	MaxKeyLen = 4096
	// MaxBodyLen bounds one stored body (1 GiB). The server additionally
	// bounds bodies by its configured store size.
	MaxBodyLen = 1 << 30
)

// ErrCorrupt reports an undecodable entry. All decode failures wrap it so
// callers can distinguish corruption (quarantine, treat as miss) from I/O
// errors (surface as store unavailability).
var ErrCorrupt = errors.New("store: corrupt entry")

// EncodeEntry renders (key, body) in the v1 entry format.
func EncodeEntry(key string, body []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return nil, fmt.Errorf("store: key length %d outside [1,%d]", len(key), MaxKeyLen)
	}
	if len(body) > MaxBodyLen {
		return nil, fmt.Errorf("store: body length %d exceeds %d", len(body), MaxBodyLen)
	}
	var lens [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lens[:], uint64(len(key)))
	n += binary.PutUvarint(lens[n:], uint64(len(body)))
	buf := make([]byte, 0, len(entryMagic)+4+n+len(key)+len(body))
	buf = append(buf, entryMagic...)
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	buf = append(buf, lens[:n]...)
	buf = append(buf, key...)
	buf = append(buf, body...)
	binary.LittleEndian.PutUint32(buf[len(entryMagic):], crc32.ChecksumIEEE(buf[len(entryMagic)+4:]))
	return buf, nil
}

// DecodeEntry parses a v1 entry, validating magic, checksum, declared
// sizes (via wirelimit before allocation-sized use) and exact consumption.
// All failures wrap ErrCorrupt.
func DecodeEntry(data []byte) (key string, body []byte, err error) {
	if len(data) < len(entryMagic)+4 || string(data[:len(entryMagic)]) != entryMagic {
		return "", nil, fmt.Errorf("%w: bad magic or truncated header", ErrCorrupt)
	}
	crc := binary.LittleEndian.Uint32(data[len(entryMagic):])
	payload := data[len(entryMagic)+4:]
	if crc32.ChecksumIEEE(payload) != crc {
		return "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	keyLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return "", nil, fmt.Errorf("%w: bad key length varint", ErrCorrupt)
	}
	payload = payload[n:]
	bodyLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return "", nil, fmt.Errorf("%w: bad body length varint", ErrCorrupt)
	}
	payload = payload[n:]
	if keyLen == 0 || keyLen > MaxKeyLen {
		return "", nil, fmt.Errorf("%w: key length %d outside [1,%d]", ErrCorrupt, keyLen, MaxKeyLen)
	}
	if err := wirelimit.CheckCount("store entry body bytes", clampInt(bodyLen), MaxBodyLen); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != keyLen+bodyLen {
		return "", nil, fmt.Errorf("%w: payload %d bytes, declared %d", ErrCorrupt, len(payload), keyLen+bodyLen)
	}
	key = string(payload[:keyLen])
	body = make([]byte, bodyLen)
	copy(body, payload[keyLen:])
	return key, body, nil
}

// clampInt narrows a wire-declared uint64 for wirelimit without wrapping
// negative: oversized values saturate and fail the cap check.
func clampInt(v uint64) int {
	if v > MaxBodyLen+1 {
		return MaxBodyLen + 1
	}
	return int(v)
}

// Digest returns the filename-safe content address of a key.
func Digest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Store is a size-bounded, crash-safe directory of entries. Safe for
// concurrent use within one process. Multiple processes may share a
// directory serially (restart handoff); concurrent multi-process writers
// are not coordinated beyond atomic-rename safety.
type Store struct {
	dir      string
	maxBytes int64

	mu          sync.Mutex
	ll          *list.List // front = most recently used
	items       map[string]*list.Element
	bytes       int64
	quarantined int
	ioErrors    int64
}

type diskEntry struct {
	digest string
	size   int64
}

const (
	entrySuffix   = ".cse"
	tmpPrefix     = "tmp-"
	quarantineDir = "quarantine"
)

// Open opens (creating if needed) the store rooted at dir, bounded to
// maxBytes of entry files (0 = 1 GiB default). Undecodable entries are
// quarantined, stray temp files from interrupted writes are removed, and
// the survivors are indexed oldest-first so eviction preserves the most
// recently written results.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type scanned struct {
		digest string
		size   int64
		mtime  time.Time
	}
	var found []scanned
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.HasPrefix(name, tmpPrefix):
			// A crash mid-write: the entry was never visible, drop the debris.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		case !strings.HasSuffix(name, entrySuffix):
			continue
		}
		digest := strings.TrimSuffix(name, entrySuffix)
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(path)
			continue
		}
		key, _, derr := DecodeEntry(data)
		if derr != nil || Digest(key) != digest {
			s.quarantine(path)
			continue
		}
		info, err := de.Info()
		mtime := time.Time{}
		if err == nil {
			mtime = info.ModTime()
		}
		found = append(found, scanned{digest: digest, size: int64(len(data)), mtime: mtime})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found { // oldest first, so the newest ends up at the front
		el := s.ll.PushFront(&diskEntry{digest: f.digest, size: f.size})
		s.items[f.digest] = el
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the stored body for key. ok reports a hit; err reports an
// I/O failure (the entry may exist but could not be read — callers should
// treat the store as unavailable, not the key as absent). Corrupt entries
// are quarantined and reported as clean misses.
func (s *Store) Get(key string) (body []byte, ok bool, err error) {
	digest := Digest(key)
	s.mu.Lock()
	el, exists := s.items[digest]
	if !exists {
		s.mu.Unlock()
		return nil, false, nil
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()

	path := filepath.Join(s.dir, digest+entrySuffix)
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, os.ErrNotExist) {
			// Concurrently evicted; a miss, not a fault.
			s.drop(digest)
			return nil, false, nil
		}
		s.mu.Lock()
		s.ioErrors++
		s.mu.Unlock()
		return nil, false, fmt.Errorf("store: %w", rerr)
	}
	gotKey, body, derr := DecodeEntry(data)
	if derr != nil || gotKey != key {
		// Bit rot (or a digest collision, astronomically unlikely): keep the
		// evidence, serve a miss so the caller re-solves and overwrites.
		s.drop(digest)
		s.quarantine(path)
		return nil, false, nil
	}
	return body, true, nil
}

// Put atomically persists key's body, then evicts LRU entries as needed
// to restore the byte bound. Bodies whose encoded entry exceeds the bound
// are skipped without error (mirroring the in-memory cache's contract).
func (s *Store) Put(key string, body []byte) error {
	buf, err := EncodeEntry(key, body)
	if err != nil {
		return err
	}
	if int64(len(buf)) > s.maxBytes {
		return nil
	}
	digest := Digest(key)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		s.mu.Lock()
		s.ioErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, filepath.Join(s.dir, digest+entrySuffix))
	}
	if werr != nil {
		_ = os.Remove(tmpName)
		s.mu.Lock()
		s.ioErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: %w", werr)
	}

	s.mu.Lock()
	if el, ok := s.items[digest]; ok {
		ent := el.Value.(*diskEntry)
		s.bytes += int64(len(buf)) - ent.size
		ent.size = int64(len(buf))
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&diskEntry{digest: digest, size: int64(len(buf))})
		s.items[digest] = el
		s.bytes += int64(len(buf))
	}
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// evictLocked deletes LRU entry files until the byte bound holds.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes {
		oldest := s.ll.Back()
		if oldest == nil {
			return
		}
		ent := oldest.Value.(*diskEntry)
		s.ll.Remove(oldest)
		delete(s.items, ent.digest)
		s.bytes -= ent.size
		_ = os.Remove(filepath.Join(s.dir, ent.digest+entrySuffix))
	}
}

// drop removes digest from the index (the file is gone or quarantined).
func (s *Store) drop(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[digest]; ok {
		s.bytes -= el.Value.(*diskEntry).size
		s.ll.Remove(el)
		delete(s.items, digest)
	}
}

// quarantine moves an undecodable file into the quarantine subdirectory
// (best-effort: on rename failure the file is left in place but never
// indexed). The count is observable via Stats.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			s.mu.Lock()
			s.quarantined++
			s.mu.Unlock()
			return
		}
	}
	s.mu.Lock()
	s.quarantined++
	s.ioErrors++
	s.mu.Unlock()
}

// Stats reports the indexed entry count, their total encoded bytes, how
// many files have been quarantined, and cumulative I/O errors.
func (s *Store) Stats() (entries int, bytes int64, quarantined int, ioErrors int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len(), s.bytes, s.quarantined, s.ioErrors
}

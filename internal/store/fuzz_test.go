package store

import (
	"bytes"
	"testing"
)

// FuzzStoreEntry drives the on-disk entry decoder with arbitrary bytes.
// Invariants: DecodeEntry never panics and never accepts an entry whose
// re-encoding differs from the input (the format is canonical — one valid
// encoding per (key, body) pair), and whatever it accepts round-trips
// losslessly. Everything else must be rejected with ErrCorrupt, never a
// panic or an oversized allocation. Pinned seeds live in
// testdata/fuzz/FuzzStoreEntry.
func FuzzStoreEntry(f *testing.F) {
	if seed, err := EncodeEntry("fp|opts", []byte(`{"key":"fp|opts","result":{}}`)); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeEntry("k", nil); err == nil {
		f.Add(seed)
	}
	f.Add([]byte("CSTE1\n"))
	f.Add([]byte{})
	f.Add([]byte("CSTE1\n\x00\x00\x00\x00\x01\x00k"))
	f.Fuzz(func(t *testing.T, data []byte) {
		key, body, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if key == "" || len(key) > MaxKeyLen || len(body) > MaxBodyLen {
			t.Fatalf("decoder accepted out-of-bounds entry: key %d bytes, body %d bytes", len(key), len(body))
		}
		re, eerr := EncodeEntry(key, body)
		if eerr != nil {
			t.Fatalf("accepted entry failed to re-encode: %v", eerr)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("format not canonical: re-encoding differs from accepted input")
		}
		k2, b2, derr := DecodeEntry(re)
		if derr != nil || k2 != key || !bytes.Equal(b2, body) {
			t.Fatalf("round trip unstable: %v", derr)
		}
	})
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEntryRoundTrip(t *testing.T) {
	cases := []struct {
		key  string
		body []byte
	}{
		{"fp|opts", []byte(`{"key":"fp|opts","result":{}}`)},
		{"k", nil},
		{strings.Repeat("x", MaxKeyLen), bytes.Repeat([]byte{0xff}, 4096)},
	}
	for _, tc := range cases {
		buf, err := EncodeEntry(tc.key, tc.body)
		if err != nil {
			t.Fatalf("encode(%q): %v", tc.key, err)
		}
		key, body, err := DecodeEntry(buf)
		if err != nil {
			t.Fatalf("decode(%q): %v", tc.key, err)
		}
		if key != tc.key || !bytes.Equal(body, tc.body) {
			t.Fatalf("round trip mismatch: key %q body %d bytes", key, len(body))
		}
	}
}

func TestEncodeRejectsOversizes(t *testing.T) {
	if _, err := EncodeEntry("", nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := EncodeEntry(strings.Repeat("k", MaxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good, err := EncodeEntry("some|key", []byte("body bytes"))
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XSTE1\n"), good[6:]...),
		"truncated":      good[:len(good)-3],
		"flipped body":   flip(good, len(good)-1),
		"flipped header": flip(good, len(entryMagic)+5),
		"trailing junk":  append(append([]byte{}, good...), 0xaa),
	}
	for name, data := range mutations {
		if _, _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// A forged declared body length with a recomputed checksum must still
	// fail the exact-consumption check rather than over-allocate.
	forged := append([]byte{}, good...)
	forged[len(entryMagic)+4+1] = 0xff // body length varint now huge
	if _, _, err := DecodeEntry(forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged length: err = %v, want ErrCorrupt", err)
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0x01
	return out
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"result":"alpha"}`)
	if err := s.Put("k1", body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k1")
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("same-process get: ok=%t err=%v body=%q", ok, err, got)
	}

	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err = s2.Get("k1")
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("reopened get: ok=%t err=%v body=%q", ok, err, got)
	}
	if _, ok, _ := s2.Get("nope"); ok {
		t.Fatal("absent key reported as hit")
	}
}

func TestStoreEvictsLRUBySize(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~64 bytes of body plus ~50 of framing; bound to ~3.
	s, err := Open(dir, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	entries, total, _, _ := s.Stats()
	if total > 400 || entries >= 6 {
		t.Fatalf("eviction did not bound the store: %d entries, %d bytes", entries, total)
	}
	// The most recent insert must have survived; the first must be gone.
	if _, ok, _ := s.Get("key5"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok, _ := s.Get("key0"); ok {
		t.Fatal("oldest entry survived a full wrap of the byte bound")
	}
	// On-disk file count matches the index.
	files, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if len(files) != entries {
		t.Fatalf("%d files on disk, index says %d", len(files), entries)
	}
}

// TestStoreQuarantinesPartialWriteOnReopen simulates a crash mid-write:
// a stray temp file and a truncated entry file are both on disk. Reopen
// must quarantine the truncated entry, drop the temp debris, and keep
// serving the intact entries.
func TestStoreQuarantinesPartialWriteOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("good body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("doomed", []byte("doomed body")); err != nil {
		t.Fatal(err)
	}
	// Crash artifacts: truncate "doomed" mid-file, leave a temp file.
	doomedPath := filepath.Join(dir, Digest("doomed")+entrySuffix)
	data, err := os.ReadFile(doomedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doomedPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("reopen over crash artifacts: %v", err)
	}
	if body, ok, err := s2.Get("good"); err != nil || !ok || string(body) != "good body" {
		t.Fatalf("intact entry lost after crash recovery: ok=%t err=%v", ok, err)
	}
	if _, ok, _ := s2.Get("doomed"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	entries, _, quarantined, _ := s2.Stats()
	if entries != 1 || quarantined != 1 {
		t.Fatalf("entries=%d quarantined=%d, want 1 and 1", entries, quarantined)
	}
	if qfiles, _ := os.ReadDir(filepath.Join(dir, quarantineDir)); len(qfiles) != 1 {
		t.Fatalf("quarantine dir holds %d files, want 1", len(qfiles))
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, tmpPrefix+"*")); len(tmps) != 0 {
		t.Fatalf("temp debris survived reopen: %v", tmps)
	}
	// The slot is writable again.
	if err := s2.Put("doomed", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if body, ok, _ := s2.Get("doomed"); !ok || string(body) != "rewritten" {
		t.Fatal("rewrite after quarantine failed")
	}
}

// TestStoreQuarantinesBitRotOnGet corrupts an entry in place after open:
// the next Get must quarantine it and report a miss, never corrupt bytes.
func TestStoreQuarantinesBitRotOnGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("rot", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Digest("rot")+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("rot"); ok || err != nil {
		t.Fatalf("bit-rotted entry: ok=%t err=%v, want clean miss", ok, err)
	}
	if _, _, quarantined, _ := s.Stats(); quarantined != 1 {
		t.Fatalf("quarantined=%d, want 1", quarantined)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				want := []byte(fmt.Sprintf("body-%d", (g+i)%16))
				if i%2 == 0 {
					if err := s.Put(key, want); err != nil {
						t.Errorf("put: %v", err)
					}
				} else if body, ok, err := s.Get(key); err != nil {
					t.Errorf("get: %v", err)
				} else if ok && !bytes.Equal(body, want) {
					t.Errorf("get %s: body %q, want %q", key, body, want)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Package parse is the single circuit-ingestion entry point shared by the
// compact façade, the CLIs and the compactd server. It unifies the three
// supported input formats — BLIF, Berkeley PLA and gate-level structural
// Verilog — behind one Parse call with optional format auto-detection, so
// every consumer resolves formats, model names and parser errors the same
// way.
package parse

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"compact/internal/blif"
	"compact/internal/faultinject"
	"compact/internal/logic"
	"compact/internal/pla"
	"compact/internal/verilog"
)

// Format identifies a circuit input format.
type Format uint8

// Supported formats. Auto sniffs the format from content (see Sniff).
const (
	Auto Format = iota
	BLIF
	PLA
	Verilog
)

// String returns the lowercase format name.
func (f Format) String() string {
	switch f {
	case Auto:
		return "auto"
	case BLIF:
		return "blif"
	case PLA:
		return "pla"
	case Verilog:
		return "verilog"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// FormatFromString parses a format name: auto (or empty), blif, pla,
// verilog (or v).
func FormatFromString(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "blif":
		return BLIF, nil
	case "pla":
		return PLA, nil
	case "verilog", "v":
		return Verilog, nil
	}
	return Auto, fmt.Errorf("parse: unknown format %q (want auto, blif, pla or verilog)", s)
}

// FormatFromPath maps a file extension to its format: .blif, .pla, .v.
// Unknown extensions return Auto, deferring to content sniffing.
func FormatFromPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".blif":
		return BLIF
	case ".pla":
		return PLA
	case ".v":
		return Verilog
	}
	return Auto
}

// maxSniffBytes bounds how much of the input Sniff examines.
const maxSniffBytes = 1 << 16

// Sniff auto-detects the format of circuit source text by scanning its
// leading significant lines:
//
//   - a "module" keyword, a Verilog comment (// or /*) or a backtick
//     compiler directive selects Verilog;
//   - a dot directive distinguishes BLIF (.model, .inputs, .outputs,
//     .names, .latch, .subckt, .exdc, .end) from PLA (.i, .o, .p, .ilb,
//     .ob, .type, .mv, .phase, .pair, .symbolic, .e);
//   - a bare cube row over {0,1,-,~, |} (PLA cover rows may precede any
//     named directive when .i/.o appear later) selects PLA.
//
// Lines starting with '#' are comments in both BLIF and PLA and are
// skipped. Sniff fails with a descriptive error when nothing recognizable
// appears in the first 64 KiB.
func Sniff(src []byte) (Format, error) {
	if len(src) > maxSniffBytes {
		src = src[:maxSniffBytes]
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "//") || strings.HasPrefix(line, "/*") ||
			strings.HasPrefix(line, "`") || strings.HasPrefix(line, "module") {
			return Verilog, nil
		}
		if strings.HasPrefix(line, ".") {
			directive := line
			if i := strings.IndexAny(line, " \t"); i >= 0 {
				directive = line[:i]
			}
			switch directive {
			case ".model", ".inputs", ".outputs", ".names", ".latch",
				".subckt", ".exdc", ".end", ".wire_load_slope", ".gate":
				return BLIF, nil
			case ".i", ".o", ".p", ".ilb", ".ob", ".type", ".mv",
				".phase", ".pair", ".symbolic", ".e":
				return PLA, nil
			default:
				return Auto, fmt.Errorf("parse: unrecognized dot directive %q", directive)
			}
		}
		if isCubeRow(line) {
			return PLA, nil
		}
		return Auto, fmt.Errorf("parse: cannot detect format from line %q", truncate(line, 40))
	}
	return Auto, fmt.Errorf("parse: no recognizable circuit content")
}

// isCubeRow reports whether the line looks like a PLA cover row.
func isCubeRow(line string) bool {
	seen := false
	for _, r := range line {
		switch r {
		case '0', '1', '-', '~', '|':
			seen = true
		case ' ', '\t':
		default:
			return false
		}
	}
	return seen
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// Parse reads one circuit from r in the given format (Auto sniffs it from
// the content) and elaborates it into a logic.Network. It is the entry
// point behind compact.Parse; see ParseNamed for overriding the model
// name of formats that do not embed one.
func Parse(r io.Reader, format Format) (*logic.Network, error) {
	return ParseNamed(r, format, "")
}

// ParseNamed is Parse with an explicit model name. PLA tables carry no
// model name in the format itself, so name (or "pla", when empty) becomes
// the network name; BLIF and Verilog embed their own names and ignore it.
func ParseNamed(r io.Reader, format Format, name string) (*logic.Network, error) {
	if err := faultinject.Err(faultinject.StageParse); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("parse: read: %w", err)
	}
	if format == Auto {
		format, err = Sniff(src)
		if err != nil {
			return nil, err
		}
	}
	switch format {
	case BLIF:
		return blif.Parse(bytes.NewReader(src))
	case PLA:
		t, err := pla.Parse(bytes.NewReader(src))
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = t.Name
		}
		if name == "" {
			name = "pla"
		}
		return t.Network(name)
	case Verilog:
		return verilog.Parse(bytes.NewReader(src))
	}
	return nil, fmt.Errorf("parse: unsupported format %v", format)
}

// ParseFile opens and parses path, picking the format from the extension
// and falling back to content sniffing for unknown extensions. The file
// base name (without extension) becomes the model name for formats that
// need one.
func ParseFile(path string) (*logic.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdrop file opened read-only; Close cannot lose written data
	defer f.Close()
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ParseNamed(f, FormatFromPath(path), base)
}

package parse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const blifSrc = `# and-or example
.model ex
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
`

const plaSrc = `# two-input and
.i 2
.o 1
.ilb a b
.ob f
.p 1
11 1
.e
`

// plaBare exercises sniffing on a PLA whose first significant line is a
// cube row (legal: espresso accepts covers before .i/.o in some dialects
// is not required — here directives come first but we also test a cube
// lead-in below via plaCubeFirst).
const plaCubeFirst = `11 1
.i 2
.o 1
.e
`

const verilogSrc = `// two-input and
module ex (a, b, f);
  input a, b;
  output f;
  and g0 (f, a, b);
endmodule
`

func TestSniff(t *testing.T) {
	cases := []struct {
		src  string
		want Format
	}{
		{blifSrc, BLIF},
		{plaSrc, PLA},
		{plaCubeFirst, PLA},
		{verilogSrc, Verilog},
		{"/* block comment */ module m; endmodule", Verilog},
		{"`timescale 1ns\nmodule m; endmodule", Verilog},
	}
	for i, tc := range cases {
		got, err := Sniff([]byte(tc.src))
		if err != nil {
			t.Errorf("case %d: Sniff error: %v", i, err)
			continue
		}
		if got != tc.want {
			t.Errorf("case %d: Sniff = %v, want %v", i, got, tc.want)
		}
	}
	if _, err := Sniff([]byte("garbage input !!!")); err == nil {
		t.Error("Sniff accepted garbage")
	}
	if _, err := Sniff([]byte("   \n\t\n")); err == nil {
		t.Error("Sniff accepted whitespace-only input")
	}
	if _, err := Sniff([]byte(".bogus directive")); err == nil {
		t.Error("Sniff accepted unknown dot directive")
	}
}

func TestParseAutoMatchesExplicit(t *testing.T) {
	for _, tc := range []struct {
		src    string
		format Format
	}{
		{blifSrc, BLIF},
		{plaSrc, PLA},
		{verilogSrc, Verilog},
	} {
		auto, err := Parse(strings.NewReader(tc.src), Auto)
		if err != nil {
			t.Fatalf("auto parse (%v): %v", tc.format, err)
		}
		expl, err := Parse(strings.NewReader(tc.src), tc.format)
		if err != nil {
			t.Fatalf("explicit parse (%v): %v", tc.format, err)
		}
		if auto.Fingerprint() != expl.Fingerprint() {
			t.Errorf("%v: auto and explicit parse disagree", tc.format)
		}
	}
}

func TestParseSemanticAgreement(t *testing.T) {
	// All three sources above encode f = a & b (modulo the extra c in the
	// BLIF example); check the PLA and Verilog ones agree everywhere.
	nwPLA, err := Parse(strings.NewReader(plaSrc), Auto)
	if err != nil {
		t.Fatal(err)
	}
	nwV, err := Parse(strings.NewReader(verilogSrc), Auto)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		in := []bool{a&1 != 0, a&2 != 0}
		if nwPLA.Eval(in)[0] != nwV.Eval(in)[0] {
			t.Fatalf("PLA and Verilog parses disagree on %v", in)
		}
	}
}

func TestParseNamedPLA(t *testing.T) {
	nw, err := ParseNamed(strings.NewReader(plaSrc), PLA, "mytable")
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "mytable" {
		t.Fatalf("PLA network name = %q, want mytable", nw.Name)
	}
	nw, err = ParseNamed(strings.NewReader(plaSrc), PLA, "")
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name == "" {
		t.Fatal("unnamed PLA parse produced empty network name")
	}
}

func TestParseWrongFormatErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader(verilogSrc), BLIF); err == nil {
		t.Error("BLIF parser accepted Verilog source")
	}
	if _, err := Parse(strings.NewReader("total garbage"), Auto); err == nil {
		t.Error("auto parse accepted garbage")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, f := range []Format{Auto, BLIF, PLA, Verilog} {
		got, err := FormatFromString(f.String())
		if err != nil || got != f {
			t.Errorf("FormatFromString(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := FormatFromString("json"); err == nil {
		t.Error("unknown format accepted")
	}
	if f, err := FormatFromString(""); err != nil || f != Auto {
		t.Errorf("empty format = %v, %v; want Auto", f, err)
	}
}

func TestFormatFromPath(t *testing.T) {
	for path, want := range map[string]Format{
		"x/y/adder.blif": BLIF,
		"t.PLA":          PLA,
		"cpu.v":          Verilog,
		"circuit.txt":    Auto,
		"noext":          Auto,
	} {
		if got := FormatFromPath(path); got != want {
			t.Errorf("FormatFromPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mytable.pla")
	if err := os.WriteFile(path, []byte(plaSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	nw, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "mytable" {
		t.Fatalf("ParseFile name = %q, want mytable", nw.Name)
	}
	// Unknown extension falls back to sniffing.
	path2 := filepath.Join(dir, "circuit.txt")
	if err := os.WriteFile(path2, []byte(blifSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(path2); err != nil {
		t.Fatalf("ParseFile with sniffing: %v", err)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.blif")); err == nil {
		t.Fatal("ParseFile on missing file succeeded")
	}
}

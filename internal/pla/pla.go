// Package pla reads and writes two-level circuits in Berkeley PLA format
// (.i/.o/.ilb/.ob/.p directives followed by cube rows). Multi-output covers
// are supported; each output column with '1' includes the cube in that
// output's on-set, '0' or '~' excludes it, and '-' marks a don't-care (the
// cube is ignored for that output, matching espresso's fr-type default).
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"compact/internal/errio"
	"compact/internal/logic"
	"compact/internal/wirelimit"
)

// directiveInt parses the single integer operand of a .i/.o/.p directive.
// The operand is capped: a PLA header is attacker-reachable through
// compactd's circuit field, and Table.Network allocates per-input and
// per-output state before any cube row corroborates the declared width, so
// an unbounded `.i 2000000000` would OOM off a 15-byte body.
func directiveInt(fields []string, lineNo int) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("line %d: malformed %s", lineNo, fields[0])
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("line %d: %s wants a non-negative integer, got %q", lineNo, fields[0], fields[1])
	}
	if err := wirelimit.CheckCount(fields[0]+" operand", v, 0); err != nil {
		return 0, fmt.Errorf("line %d: %v", lineNo, err)
	}
	return v, nil
}

// Table is a parsed PLA: a multi-output SOP cover.
type Table struct {
	Name       string
	NumIn      int
	NumOut     int
	InNames    []string // empty if .ilb absent
	OutNames   []string // empty if .ob absent
	Cubes      []Cube
	Type       string // .type directive value, "" if absent
	DeclaredNP int    // .p value, -1 if absent
}

// Cube is one product term: In over '0','1','-', Out over '0','1','-','~'.
type Cube struct {
	In  string
	Out string
}

// Parse reads a PLA table from r.
func Parse(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	t := &Table{NumIn: -1, NumOut: -1, DeclaredNP: -1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case ".i":
			if t.NumIn, err = directiveInt(fields, lineNo); err != nil {
				return nil, err
			}
		case ".o":
			if t.NumOut, err = directiveInt(fields, lineNo); err != nil {
				return nil, err
			}
		case ".p":
			if t.DeclaredNP, err = directiveInt(fields, lineNo); err != nil {
				return nil, err
			}
		case ".ilb":
			t.InNames = fields[1:]
		case ".ob":
			t.OutNames = fields[1:]
		case ".type":
			if len(fields) > 1 {
				t.Type = fields[1]
			}
		case ".e", ".end":
			// done
		default:
			if strings.HasPrefix(fields[0], ".") {
				continue // ignore unknown directives
			}
			if t.NumIn < 0 || t.NumOut < 0 {
				return nil, fmt.Errorf("line %d: cube before .i/.o", lineNo)
			}
			var in, out string
			if len(fields) == 2 {
				in, out = fields[0], fields[1]
			} else if len(fields) == 1 && len(fields[0]) == t.NumIn+t.NumOut {
				in, out = fields[0][:t.NumIn], fields[0][t.NumIn:]
			} else {
				return nil, fmt.Errorf("line %d: malformed cube %q", lineNo, line)
			}
			if len(in) != t.NumIn || len(out) != t.NumOut {
				return nil, fmt.Errorf("line %d: cube size mismatch (%d/%d vs .i %d .o %d)",
					lineNo, len(in), len(out), t.NumIn, t.NumOut)
			}
			for _, ch := range in {
				if ch != '0' && ch != '1' && ch != '-' {
					return nil, fmt.Errorf("line %d: bad input literal %q", lineNo, ch)
				}
			}
			for _, ch := range out {
				if ch != '0' && ch != '1' && ch != '-' && ch != '~' {
					return nil, fmt.Errorf("line %d: bad output literal %q", lineNo, ch)
				}
			}
			t.Cubes = append(t.Cubes, Cube{In: in, Out: out})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla: read: %w", err)
	}
	if t.NumIn < 0 || t.NumOut < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o declarations")
	}
	if t.DeclaredNP >= 0 && t.DeclaredNP != len(t.Cubes) {
		// Tolerate, as espresso output sometimes disagrees; record actual.
		t.DeclaredNP = len(t.Cubes)
	}
	return t, nil
}

// Network converts the table into a logic.Network: each output is the OR of
// its on-set cubes.
func (t *Table) Network(name string) (*logic.Network, error) {
	if name == "" {
		name = t.Name
	}
	if name == "" {
		name = "pla"
	}
	b := logic.NewBuilder(name)
	in := make([]int, t.NumIn)
	for i := range in {
		nm := fmt.Sprintf("i%d", i)
		if i < len(t.InNames) {
			nm = t.InNames[i]
		}
		in[i] = b.Input(nm)
	}
	for o := 0; o < t.NumOut; o++ {
		var terms []int
		for _, c := range t.Cubes {
			if c.Out[o] != '1' {
				continue
			}
			var lits []int
			for i := 0; i < t.NumIn; i++ {
				switch c.In[i] {
				case '1':
					lits = append(lits, in[i])
				case '0':
					lits = append(lits, b.Not(in[i]))
				}
			}
			terms = append(terms, b.And(lits...))
		}
		nm := fmt.Sprintf("o%d", o)
		if o < len(t.OutNames) {
			nm = t.OutNames[o]
		}
		b.Output(nm, b.Or(terms...))
	}
	return b.Build(), nil
}

// FromNetwork builds a PLA table from a network by exhaustive enumeration.
// It is intended for small networks (NumInputs <= maxInputs, default 16 when
// maxInputs <= 0); larger networks return an error.
func FromNetwork(n *logic.Network, maxInputs int) (*Table, error) {
	if maxInputs <= 0 {
		maxInputs = 16
	}
	ni := n.NumInputs()
	if ni > maxInputs {
		return nil, fmt.Errorf("pla: %d inputs exceeds enumeration limit %d", ni, maxInputs)
	}
	t := &Table{
		Name:     n.Name,
		NumIn:    ni,
		NumOut:   n.NumOutputs(),
		InNames:  n.InputNames(),
		OutNames: append([]string(nil), n.OutputNames...),
	}
	in := make([]bool, ni)
	for m := 0; m < 1<<ni; m++ {
		for i := range in {
			in[i] = m&(1<<i) != 0
		}
		out := n.Eval(in)
		any := false
		ob := make([]byte, t.NumOut)
		for o, v := range out {
			if v {
				ob[o] = '1'
				any = true
			} else {
				ob[o] = '0'
			}
		}
		if !any {
			continue
		}
		ib := make([]byte, ni)
		for i := range in {
			if in[i] {
				ib[i] = '1'
			} else {
				ib[i] = '0'
			}
		}
		t.Cubes = append(t.Cubes, Cube{In: string(ib), Out: string(ob)})
	}
	return t, nil
}

// Write serializes the table in PLA format.
func Write(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	ew := errio.NewWriter(bw)
	ew.Printf(".i %d\n.o %d\n", t.NumIn, t.NumOut)
	if len(t.InNames) == t.NumIn && t.NumIn > 0 {
		ew.Printf(".ilb %s\n", strings.Join(t.InNames, " "))
	}
	if len(t.OutNames) == t.NumOut && t.NumOut > 0 {
		ew.Printf(".ob %s\n", strings.Join(t.OutNames, " "))
	}
	ew.Printf(".p %d\n", len(t.Cubes))
	for _, c := range t.Cubes {
		ew.Printf("%s %s\n", c.In, c.Out)
	}
	ew.Println(".e")
	if err := ew.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

package pla

import (
	"bytes"
	"strings"
	"testing"

	"compact/internal/logic"
)

const samplePLA = `
# 2-bit comparator: eq, gt
.i 4
.o 2
.ilb a1 a0 b1 b0
.ob eq gt
.p 10
00-00- 00
`

func TestParseBasic(t *testing.T) {
	src := `
.i 2
.o 1
.ilb a b
.ob f
.p 2
1- 1
-1 1
.e
`
	tab, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumIn != 2 || tab.NumOut != 1 || len(tab.Cubes) != 2 {
		t.Fatalf("parsed %+v", tab)
	}
	n, err := tab.Network("or2")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		a, b := v&1 != 0, v&2 != 0
		if got, want := n.Eval([]bool{a, b})[0], a || b; got != want {
			t.Errorf("f(%v,%v)=%v want %v", a, b, got, want)
		}
	}
}

func TestParseJoinedCube(t *testing.T) {
	// Cube given as one token of length .i+.o.
	src := ".i 2\n.o 1\n111\n.e\n"
	tab, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cubes) != 1 || tab.Cubes[0].In != "11" || tab.Cubes[0].Out != "1" {
		t.Fatalf("cubes = %+v", tab.Cubes)
	}
}

func TestParseMultiOutput(t *testing.T) {
	src := `
.i 2
.o 2
.p 3
11 10
10 01
01 01
.e
`
	tab, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := tab.Network("xo")
	if err != nil {
		t.Fatal(err)
	}
	// o0 = a&b, o1 = a xor b
	for v := 0; v < 4; v++ {
		a, b := v&1 != 0, v&2 != 0
		out := n.Eval([]bool{a, b})
		if out[0] != (a && b) || out[1] != (a != b) {
			t.Errorf("(%v,%v) -> %v", a, b, out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no decls":  "11 1\n",
		"bad in":    ".i 2\n.o 1\n12 1\n",
		"bad out":   ".i 2\n.o 1\n11 2\n",
		"mismatch":  ".i 3\n.o 1\n11 1\n",
		"malformed": ".i 2\n.o 1\n1 1 1\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFromNetworkRoundTrip(t *testing.T) {
	b := logic.NewBuilder("maj")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("maj", b.Or(b.And(a, bb), b.And(a, c), b.And(bb, c)))
	b.Output("par", b.Xor(a, bb, c))
	n := b.Build()

	tab, err := FromNetwork(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	tab2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	n2, err := tab2.Network("maj2")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		w1, w2 := n.Eval(in), n2.Eval(in)
		for o := range w1 {
			if w1[o] != w2[o] {
				t.Fatalf("output %d differs on %v", o, in)
			}
		}
	}
}

func TestFromNetworkTooWide(t *testing.T) {
	b := logic.NewBuilder("wide")
	ids := b.Inputs("x", 20)
	b.Output("f", b.And(ids...))
	if _, err := FromNetwork(b.Build(), 16); err == nil {
		t.Error("expected enumeration-limit error")
	}
}

func TestNamesDefaulting(t *testing.T) {
	src := ".i 1\n.o 1\n1 1\n.e\n"
	tab, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := tab.Network("")
	if err != nil {
		t.Fatal(err)
	}
	if n.InputNames()[0] != "i0" || n.OutputNames[0] != "o0" {
		t.Errorf("default names: %v %v", n.InputNames(), n.OutputNames)
	}
}

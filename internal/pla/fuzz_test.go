package pla

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the PLA reader never panics and that any table it
// accepts survives a Write → Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		samplePLA,
		"",
		"# comment\n",
		".i 2\n.o 1\n.p 2\n1- 1\n-1 1\n.e\n",
		".i 2\n.o 1\n.ilb a b\n.ob f\n1- 1\n.e\n",
		// Bare directives (no operand) and bad operands.
		".p\n",
		".i\n.o\n",
		".i x\n",
		".i -3\n",
		".i 999999999999999999999999\n",
		// Cube width mismatches and stray characters.
		".i 2\n.o 1\n111 1\n",
		".i 2\n.o 1\n1- 2\n",
		".i 1\n.o 1\n~ 1\n",
		".e\n",
		".type fr\n.i 1\n.o 1\n1 1\n.e\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tbl, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tbl); err != nil {
			t.Fatalf("Write of parsed table failed: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, buf.String())
		}
	})
}

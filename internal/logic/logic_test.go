package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildMajority(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder("maj3")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	m := b.Or(b.And(a, bb), b.And(a, c), b.And(bb, c))
	b.Output("maj", m)
	return b.Build()
}

func TestEvalMajority(t *testing.T) {
	n := buildMajority(t)
	for v := 0; v < 8; v++ {
		a, bb, c := v&1 != 0, v&2 != 0, v&4 != 0
		got := n.Eval([]bool{a, bb, c})[0]
		want := (a && bb) || (a && c) || (bb && c)
		if got != want {
			t.Errorf("maj(%v,%v,%v) = %v, want %v", a, bb, c, got, want)
		}
	}
}

func TestGateSemantics(t *testing.T) {
	cases := []struct {
		typ  GateType
		eval func(in []bool) bool
		ar   int
	}{
		{And, func(in []bool) bool { return in[0] && in[1] && in[2] }, 3},
		{Or, func(in []bool) bool { return in[0] || in[1] || in[2] }, 3},
		{Nand, func(in []bool) bool { return !(in[0] && in[1] && in[2]) }, 3},
		{Nor, func(in []bool) bool { return !(in[0] || in[1] || in[2]) }, 3},
		{Xor, func(in []bool) bool { return in[0] != in[1] != in[2] }, 3},
		{Xnor, func(in []bool) bool { return !(in[0] != in[1] != in[2]) }, 3},
		{Mux, func(in []bool) bool {
			if in[0] {
				return in[2]
			}
			return in[1]
		}, 3},
	}
	for _, tc := range cases {
		b := NewBuilder("g")
		ids := b.Inputs("x", tc.ar)
		var g int
		if tc.typ == Mux {
			g = b.Mux(ids[0], ids[1], ids[2])
		} else {
			g = b.nary(tc.typ, ids)
		}
		b.Output("f", g)
		n := b.Build()
		for v := 0; v < 1<<tc.ar; v++ {
			in := make([]bool, tc.ar)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			if got, want := n.Eval(in)[0], tc.eval(in); got != want {
				t.Errorf("%s%v = %v, want %v", tc.typ, in, got, want)
			}
		}
	}
}

func TestStructuralHashing(t *testing.T) {
	b := NewBuilder("h")
	x, y := b.Input("x"), b.Input("y")
	g1 := b.And(x, y)
	g2 := b.And(x, y)
	if g1 != g2 {
		t.Errorf("identical AND gates not hashed: %d vs %d", g1, g2)
	}
	if b.And(y, x) == g1 {
		t.Errorf("AND(y,x) unexpectedly hashed to AND(x,y); hashing is positional")
	}
	if b.Not(b.Not(x)) != x {
		t.Errorf("double negation not collapsed")
	}
}

func TestConstantsAndTrivialGates(t *testing.T) {
	b := NewBuilder("c")
	x := b.Input("x")
	b.Output("t", b.Const1())
	b.Output("f", b.Const0())
	b.Output("andx", b.And(x)) // unary AND = buf
	b.Output("norx", b.Nor(x)) // unary NOR = not
	b.Output("empty_and", b.And())
	b.Output("empty_or", b.Or())
	n := b.Build()
	for _, x := range []bool{false, true} {
		out := n.Eval([]bool{x})
		if !out[0] || out[1] {
			t.Errorf("constants wrong: %v", out)
		}
		if out[2] != x || out[3] != !x {
			t.Errorf("unary gates wrong for x=%v: %v", x, out)
		}
		if !out[4] || out[5] {
			t.Errorf("empty gates wrong: %v", out)
		}
	}
}

func TestEval64MatchesEval(t *testing.T) {
	n := randomNetwork(rand.New(rand.NewSource(7)), 6, 40)
	// 64 random vectors, compared one by one.
	rng := rand.New(rand.NewSource(8))
	words := make([]uint64, n.NumInputs())
	for i := range words {
		words[i] = rng.Uint64()
	}
	par := n.Eval64(words)
	for bit := 0; bit < 64; bit++ {
		in := make([]bool, n.NumInputs())
		for i := range in {
			in[i] = words[i]&(1<<bit) != 0
		}
		seq := n.Eval(in)
		for o := range seq {
			if seq[o] != (par[o]&(1<<bit) != 0) {
				t.Fatalf("bit %d output %d: Eval=%v Eval64=%v", bit, o, seq[o], par[o]&(1<<bit) != 0)
			}
		}
	}
}

// randomNetwork builds a random network for differential tests.
func randomNetwork(rng *rand.Rand, nIn, nGates int) *Network {
	b := NewBuilder("rand")
	ids := b.Inputs("i", nIn)
	pool := append([]int(nil), ids...)
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Mux}
	for g := 0; g < nGates; g++ {
		t := types[rng.Intn(len(types))]
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch t {
		case Not:
			id = b.Not(pick())
		case Mux:
			id = b.Mux(pick(), pick(), pick())
		default:
			k := 2 + rng.Intn(3)
			xs := make([]int, k)
			for i := range xs {
				xs[i] = pick()
			}
			id = b.nary(t, xs)
		}
		pool = append(pool, id)
	}
	for o := 0; o < 4; o++ {
		b.Output(string(rune('w'+o)), pool[len(pool)-1-o])
	}
	return b.Build()
}

func TestValidate(t *testing.T) {
	n := buildMajority(t)
	if err := n.Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	bad := &Network{
		Name:        "bad",
		Gates:       []Gate{{Type: And, Fanin: []int{0}}}, // self-fanin
		Outputs:     []int{0},
		OutputNames: []string{"f"},
	}
	if err := bad.Validate(); err == nil {
		t.Errorf("non-topological fanin accepted")
	}
	bad2 := &Network{
		Name:        "bad2",
		Gates:       []Gate{{Type: Input, Name: "x"}},
		Outputs:     []int{5},
		OutputNames: []string{"f"},
	}
	if err := bad2.Validate(); err == nil {
		t.Errorf("dangling output accepted")
	}
}

func TestLevelsDepthCone(t *testing.T) {
	b := NewBuilder("lv")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	g1 := b.And(x, y)
	g2 := b.Or(g1, z)
	g3 := b.Xor(g2, x)
	b.Output("f", g3)
	n := b.Build()
	lv := n.Levels()
	if lv[x] != 0 || lv[g1] != 1 || lv[g2] != 2 || lv[g3] != 3 {
		t.Errorf("levels wrong: %v", lv)
	}
	if n.Depth() != 3 {
		t.Errorf("depth = %d, want 3", n.Depth())
	}
	cone := n.Cone(g1)
	if len(cone) != 3 { // x, y, g1
		t.Errorf("cone(g1) = %v", cone)
	}
	fo := n.FanoutCounts()
	if fo[x] != 2 { // feeds g1 and g3
		t.Errorf("fanout(x) = %d, want 2", fo[x])
	}
}

func TestRippleAdder(t *testing.T) {
	const w = 5
	b := NewBuilder("add")
	xs := b.Inputs("x", w)
	ys := b.Inputs("y", w)
	sums, cout := b.AddRippleAdder(xs, ys, b.Const0())
	for i, s := range sums {
		b.Output(string(rune('s'))+string(rune('0'+i)), s)
	}
	b.Output("cout", cout)
	n := b.Build()
	for a := 0; a < 1<<w; a++ {
		for c := 0; c < 1<<w; c++ {
			in := make([]bool, 2*w)
			for i := 0; i < w; i++ {
				in[i] = a&(1<<i) != 0
				in[w+i] = c&(1<<i) != 0
			}
			out := n.Eval(in)
			got := 0
			for i := 0; i <= w; i++ {
				if out[i] {
					got |= 1 << i
				}
			}
			if got != a+c {
				t.Fatalf("%d+%d = %d, want %d", a, c, got, a+c)
			}
		}
	}
}

// Property: Eval is deterministic and consistent with Eval64 for arbitrary
// input words on a fixed random network.
func TestQuickEvalConsistency(t *testing.T) {
	n := randomNetwork(rand.New(rand.NewSource(99)), 5, 30)
	f := func(w0, w1, w2, w3, w4 uint64) bool {
		words := []uint64{w0, w1, w2, w3, w4}
		par := n.Eval64(words)
		for bit := 0; bit < 64; bit += 17 {
			in := make([]bool, 5)
			for i := range in {
				in[i] = words[i]&(1<<bit) != 0
			}
			seq := n.Eval(in)
			for o := range seq {
				if seq[o] != (par[o]&(1<<bit) != 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInputOutputLookup(t *testing.T) {
	n := buildMajority(t)
	if n.InputIndex("b") != 1 || n.InputIndex("zz") != -1 {
		t.Errorf("InputIndex wrong")
	}
	if n.OutputIndex("maj") != 0 || n.OutputIndex("zz") != -1 {
		t.Errorf("OutputIndex wrong")
	}
	names := n.InputNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("InputNames = %v", names)
	}
	if n.String() == "" || n.Dump() == "" {
		t.Errorf("String/Dump empty")
	}
}

package logic

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
)

// fingerprintVersion is folded into every hash so the fingerprint can be
// evolved without silently colliding with values from older releases. Bump
// it whenever the canonical encoding below changes.
const fingerprintVersion = "compact-network-v1"

// Fingerprint returns a canonical content hash of the network, as a
// lowercase hex string prefixed with "sha256:".
//
// The hash is structural, not positional: every gate contributes a digest
// computed from its type and the digests of its fanins, so two networks
// that differ only in gate numbering (or in the order unrelated gates were
// declared) fingerprint identically. For symmetric gates (And, Or, Nand,
// Nor, Xor, Xnor) the fanin digests are sorted first, making the hash
// invariant under fanin permutation as well; Mux and the unary gates keep
// their operand order. Primary inputs hash their declaration position and
// name (both determine Eval semantics for callers indexing assignment
// vectors), and primary outputs contribute their names and driver digests
// in declaration order. The network's Name is deliberately excluded:
// renaming a model does not change what it computes, and content-addressed
// caches keyed by Fingerprint should not fragment on it.
//
// Fingerprint is the network half of the synthesis cache key used by the
// compactd server; see core.Options.Key for the options half.
func (n *Network) Fingerprint() string {
	sum := n.fingerprintSum()
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, len("sha256:")+2*len(sum))
	out = append(out, "sha256:"...)
	for _, b := range sum {
		out = append(out, hexdigits[b>>4], hexdigits[b&0xf])
	}
	return string(out)
}

func (n *Network) fingerprintSum() [sha256.Size]byte {
	// Per-gate structural digests, computed in id order (fanins always
	// have smaller ids, so every child digest is ready when needed).
	digests := make([][sha256.Size]byte, len(n.Gates))
	inputPos := make(map[int]int, len(n.Inputs))
	for pos, id := range n.Inputs {
		inputPos[id] = pos
	}
	var num [8]byte
	for gi, g := range n.Gates {
		h := sha256.New()
		hwrite(h, []byte{byte(g.Type)})
		switch g.Type {
		case Input:
			binary.LittleEndian.PutUint64(num[:], uint64(inputPos[gi]))
			hwrite(h, num[:])
			hwrite(h, []byte(g.Name))
		default:
			kids := make([][sha256.Size]byte, len(g.Fanin))
			for i, f := range g.Fanin {
				kids[i] = digests[f]
			}
			if symmetricGate(g.Type) {
				sort.Slice(kids, func(a, b int) bool {
					return compareDigests(kids[a], kids[b]) < 0
				})
			}
			for _, k := range kids {
				hwrite(h, k[:])
			}
		}
		h.Sum(digests[gi][:0])
	}

	// The network digest: version, input arity, outputs (name + driver, in
	// order), then the multiset of all gate digests sorted — so dead gates
	// still contribute content, but never positionally.
	top := sha256.New()
	hwrite(top, []byte(fingerprintVersion))
	binary.LittleEndian.PutUint64(num[:], uint64(len(n.Inputs)))
	hwrite(top, num[:])
	binary.LittleEndian.PutUint64(num[:], uint64(len(n.Outputs)))
	hwrite(top, num[:])
	for i, id := range n.Outputs {
		if i < len(n.OutputNames) {
			hwrite(top, []byte(n.OutputNames[i]))
		}
		hwrite(top, []byte{0})
		hwrite(top, digests[id][:])
	}
	all := make([][sha256.Size]byte, len(digests))
	copy(all, digests)
	sort.Slice(all, func(a, b int) bool { return compareDigests(all[a], all[b]) < 0 })
	for _, d := range all {
		hwrite(top, d[:])
	}
	var sum [sha256.Size]byte
	top.Sum(sum[:0])
	return sum
}

// hwrite feeds bytes to a hash. hash.Hash documents that Write never
// returns an error; the indirection keeps the discard explicit.
func hwrite(h hash.Hash, b []byte) { _, _ = h.Write(b) }

// symmetricGate reports whether the gate's function is invariant under
// fanin permutation.
func symmetricGate(t GateType) bool {
	switch t {
	case And, Or, Nand, Nor, Xor, Xnor:
		return true
	}
	return false
}

func compareDigests(a, b [sha256.Size]byte) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

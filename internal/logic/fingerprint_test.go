package logic

import (
	"strings"
	"testing"
)

// buildXorShare builds out = (a & b) | (!a & c) with an extra shared
// conjunction, using the Builder, with gates emitted in the given order of
// the two AND terms (order=false swaps which AND is constructed first).
// Both orders describe the same network content under renumbering.
func buildXorShare(t *testing.T, swap bool) *Network {
	t.Helper()
	b := NewBuilder("m")
	a := b.Input("a")
	bi := b.Input("b")
	c := b.Input("c")
	na := b.Not(a)
	var t1, t2 int
	if swap {
		t2 = b.And(na, c)
		t1 = b.And(a, bi)
	} else {
		t1 = b.And(a, bi)
		t2 = b.And(na, c)
	}
	b.Output("out", b.Or(t1, t2))
	return b.Build()
}

func TestFingerprintStableAcrossRenumbering(t *testing.T) {
	n1 := buildXorShare(t, false)
	n2 := buildXorShare(t, true)
	f1, f2 := n1.Fingerprint(), n2.Fingerprint()
	if f1 != f2 {
		t.Fatalf("renumbered networks fingerprint differently:\n%s\n%s", f1, f2)
	}
	if !strings.HasPrefix(f1, "sha256:") || len(f1) != len("sha256:")+64 {
		t.Fatalf("malformed fingerprint %q", f1)
	}
}

func TestFingerprintFaninPermutation(t *testing.T) {
	build := func(swap bool) *Network {
		b := NewBuilder("m")
		a, c := b.Input("a"), b.Input("b")
		if swap {
			b.Output("o", b.And(c, a))
		} else {
			b.Output("o", b.And(a, c))
		}
		return b.Build()
	}
	if build(false).Fingerprint() != build(true).Fingerprint() {
		t.Fatal("And(a,b) and And(b,a) should fingerprint identically")
	}
	// Mux is NOT symmetric: swapping d0/d1 changes the function.
	mux := func(swap bool) *Network {
		b := NewBuilder("m")
		s, d0, d1 := b.Input("s"), b.Input("d0"), b.Input("d1")
		if swap {
			b.Output("o", b.Mux(s, d1, d0))
		} else {
			b.Output("o", b.Mux(s, d0, d1))
		}
		return b.Build()
	}
	if mux(false).Fingerprint() == mux(true).Fingerprint() {
		t.Fatal("mux with swapped data fanins must fingerprint differently")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := buildXorShare(t, false)
	fp := base.Fingerprint()

	// Network name must not matter.
	renamed := *base
	renamed.Name = "other"
	if renamed.Fingerprint() != fp {
		t.Fatal("network name leaked into the fingerprint")
	}

	// Output name must matter (it is part of the wire contract).
	named := *base
	named.OutputNames = []string{"different"}
	if named.Fingerprint() == fp {
		t.Fatal("output rename did not change the fingerprint")
	}

	// Gate type must matter.
	b := NewBuilder("m")
	a := b.Input("a")
	bi := b.Input("b")
	c := b.Input("c")
	na := b.Not(a)
	t1 := b.And(a, bi)
	t2 := b.And(na, c)
	b.Output("out", b.And(t1, t2)) // Or -> And
	other := b.Build()
	if other.Fingerprint() == fp {
		t.Fatal("gate-type change did not change the fingerprint")
	}

	// Input order must matter (it changes Eval vector semantics).
	b2 := NewBuilder("m")
	c2 := b2.Input("c")
	a2 := b2.Input("a")
	b2i := b2.Input("b")
	na2 := b2.Not(a2)
	b2.Output("out", b2.Or(b2.And(a2, b2i), b2.And(na2, c2)))
	reord := b2.Build()
	if reord.Fingerprint() == fp {
		t.Fatal("input reordering did not change the fingerprint")
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	n := buildXorShare(t, false)
	f := n.Fingerprint()
	for i := 0; i < 10; i++ {
		if g := n.Fingerprint(); g != f {
			t.Fatalf("fingerprint not deterministic: %s vs %s", f, g)
		}
	}
}

// Package logic provides a combinational Boolean network intermediate
// representation used throughout the COMPACT reproduction. A Network is a
// directed acyclic graph of gates over named primary inputs and outputs.
// Networks are immutable once built; use Builder to construct them.
//
// The representation is deliberately simple: every gate is identified by a
// dense integer id, fanins always have smaller ids than the gates they feed
// (topological by construction), and simulation is available both one vector
// at a time and 64 vectors in parallel.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// GateType enumerates the supported combinational gate kinds.
type GateType uint8

// Gate kinds. Input gates have no fanin; Const0/Const1 are nullary
// constants; Buf/Not are unary; And/Or/Nand/Nor/Xor/Xnor are n-ary (n >= 1);
// Mux is ternary with fanin order (sel, d0, d1) computing sel ? d1 : d0.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux
)

var gateNames = [...]string{
	Input: "input", Const0: "const0", Const1: "const1", Buf: "buf",
	Not: "not", And: "and", Or: "or", Nand: "nand", Nor: "nor",
	Xor: "xor", Xnor: "xnor", Mux: "mux",
}

// String returns the lowercase mnemonic of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("gate(%d)", uint8(t))
}

// Arity bounds for each gate type; -1 means any arity >= 1.
func (t GateType) arity() (min, max int) {
	switch t {
	case Input, Const0, Const1:
		return 0, 0
	case Buf, Not:
		return 1, 1
	case Mux:
		return 3, 3
	default:
		return 1, -1
	}
}

// Gate is a single node of the network. Fanin ids always refer to gates
// with strictly smaller ids.
type Gate struct {
	Type  GateType
	Fanin []int
	Name  string // optional; always set for Input gates
}

// Network is an immutable combinational Boolean network.
type Network struct {
	Name        string
	Gates       []Gate
	Inputs      []int // ids of Input gates in declaration order
	Outputs     []int // ids of gates driving each primary output
	OutputNames []string
}

// NumInputs returns the number of primary inputs.
func (n *Network) NumInputs() int { return len(n.Inputs) }

// NumOutputs returns the number of primary outputs.
func (n *Network) NumOutputs() int { return len(n.Outputs) }

// NumGates returns the total number of gates including inputs and constants.
func (n *Network) NumGates() int { return len(n.Gates) }

// InputNames returns the primary input names in declaration order.
func (n *Network) InputNames() []string {
	names := make([]string, len(n.Inputs))
	for i, id := range n.Inputs {
		names[i] = n.Gates[id].Name
	}
	return names
}

// InputIndex returns the position of the named primary input, or -1.
func (n *Network) InputIndex(name string) int {
	for i, id := range n.Inputs {
		if n.Gates[id].Name == name {
			return i
		}
	}
	return -1
}

// OutputIndex returns the position of the named primary output, or -1.
func (n *Network) OutputIndex(name string) int {
	for i, nm := range n.OutputNames {
		if nm == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: topological fanin order, arity
// bounds, input bookkeeping and output references. Networks produced by
// Builder always validate.
func (n *Network) Validate() error {
	inputSeen := make(map[int]bool)
	for gi, g := range n.Gates {
		mn, mx := g.Type.arity()
		if len(g.Fanin) < mn || (mx >= 0 && len(g.Fanin) > mx) {
			return fmt.Errorf("gate %d (%s): bad arity %d", gi, g.Type, len(g.Fanin))
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= gi {
				return fmt.Errorf("gate %d (%s): fanin %d not topological", gi, g.Type, f)
			}
		}
		if g.Type == Input {
			if g.Name == "" {
				return fmt.Errorf("gate %d: unnamed input", gi)
			}
			inputSeen[gi] = true
		}
	}
	for _, id := range n.Inputs {
		if id < 0 || id >= len(n.Gates) || n.Gates[id].Type != Input {
			return fmt.Errorf("inputs list references non-input gate %d", id)
		}
		delete(inputSeen, id)
	}
	if len(inputSeen) > 0 {
		return fmt.Errorf("%d input gates missing from Inputs list", len(inputSeen))
	}
	if len(n.Outputs) != len(n.OutputNames) {
		return fmt.Errorf("outputs/names length mismatch: %d vs %d", len(n.Outputs), len(n.OutputNames))
	}
	for i, id := range n.Outputs {
		if id < 0 || id >= len(n.Gates) {
			return fmt.Errorf("output %d (%s) references invalid gate %d", i, n.OutputNames[i], id)
		}
	}
	return nil
}

// evalGate computes one gate's value given fanin values.
func evalGate(t GateType, in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == Xnor {
			return !v
		}
		return v
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	}
	//lint:ignore panicfree unreachable: Eval/Eval64 skip Input gates before dispatching here
	panic("logic: evalGate on input gate")
}

// Eval simulates the network on a single input vector (one bool per primary
// input, in declaration order) and returns one bool per primary output.
func (n *Network) Eval(inputs []bool) []bool {
	if len(inputs) != len(n.Inputs) {
		//lint:ignore panicfree hot-path precondition on a per-vector simulation call; wrong width is a caller bug
		panic(fmt.Sprintf("logic: Eval got %d inputs, want %d", len(inputs), len(n.Inputs)))
	}
	vals := make([]bool, len(n.Gates))
	for i, id := range n.Inputs {
		vals[id] = inputs[i]
	}
	var buf [8]bool
	for gi, g := range n.Gates {
		if g.Type == Input {
			continue
		}
		in := buf[:0]
		for _, f := range g.Fanin {
			in = append(in, vals[f])
		}
		vals[gi] = evalGate(g.Type, in)
	}
	out := make([]bool, len(n.Outputs))
	for i, id := range n.Outputs {
		out[i] = vals[id]
	}
	return out
}

// Eval64 simulates 64 input vectors in parallel. inputs[i] carries the 64
// values of primary input i, one per bit. The result holds one word per
// primary output.
func (n *Network) Eval64(inputs []uint64) []uint64 {
	if len(inputs) != len(n.Inputs) {
		//lint:ignore panicfree hot-path precondition on a per-vector simulation call; wrong width is a caller bug
		panic(fmt.Sprintf("logic: Eval64 got %d inputs, want %d", len(inputs), len(n.Inputs)))
	}
	vals := make([]uint64, len(n.Gates))
	for i, id := range n.Inputs {
		vals[id] = inputs[i]
	}
	for gi, g := range n.Gates {
		var v uint64
		switch g.Type {
		case Input:
			continue
		case Const0:
			v = 0
		case Const1:
			v = ^uint64(0)
		case Buf:
			v = vals[g.Fanin[0]]
		case Not:
			v = ^vals[g.Fanin[0]]
		case And, Nand:
			v = ^uint64(0)
			for _, f := range g.Fanin {
				v &= vals[f]
			}
			if g.Type == Nand {
				v = ^v
			}
		case Or, Nor:
			for _, f := range g.Fanin {
				v |= vals[f]
			}
			if g.Type == Nor {
				v = ^v
			}
		case Xor, Xnor:
			for _, f := range g.Fanin {
				v ^= vals[f]
			}
			if g.Type == Xnor {
				v = ^v
			}
		case Mux:
			s, d0, d1 := vals[g.Fanin[0]], vals[g.Fanin[1]], vals[g.Fanin[2]]
			v = (s & d1) | (^s & d0)
		}
		vals[gi] = v
	}
	out := make([]uint64, len(n.Outputs))
	for i, id := range n.Outputs {
		out[i] = vals[id]
	}
	return out
}

// Levels returns, for every gate, its logic depth (inputs and constants are
// level 0; every other gate is 1 + max fanin level).
func (n *Network) Levels() []int {
	lv := make([]int, len(n.Gates))
	for gi, g := range n.Gates {
		if len(g.Fanin) == 0 {
			continue
		}
		m := 0
		for _, f := range g.Fanin {
			if lv[f] > m {
				m = lv[f]
			}
		}
		lv[gi] = m + 1
	}
	return lv
}

// Depth returns the maximum logic level over all primary outputs.
func (n *Network) Depth() int {
	lv := n.Levels()
	d := 0
	for _, id := range n.Outputs {
		if lv[id] > d {
			d = lv[id]
		}
	}
	return d
}

// FanoutCounts returns the number of gate fanouts of every gate (primary
// output references are not counted).
func (n *Network) FanoutCounts() []int {
	fo := make([]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			fo[f]++
		}
	}
	return fo
}

// Cone returns the set of gate ids in the transitive fanin cone of root
// (inclusive), in ascending id order.
func (n *Network) Cone(root int) []int {
	seen := make(map[int]bool)
	var stack []int
	stack = append(stack, root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, n.Gates[id].Fanin...)
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Stats summarizes network size.
type Stats struct {
	Inputs  int
	Outputs int
	Gates   int // excluding Input gates and constants
	Depth   int
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	g := 0
	for _, gate := range n.Gates {
		switch gate.Type {
		case Input, Const0, Const1:
		default:
			g++
		}
	}
	return Stats{Inputs: len(n.Inputs), Outputs: len(n.Outputs), Gates: g, Depth: n.Depth()}
}

// String returns a compact one-line summary.
func (n *Network) String() string {
	s := n.Stats()
	return fmt.Sprintf("%s: %d inputs, %d outputs, %d gates, depth %d", n.Name, s.Inputs, s.Outputs, s.Gates, s.Depth)
}

// Dump writes a human-readable listing of all gates, useful in tests.
func (n *Network) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".network %s\n", n.Name)
	for gi, g := range n.Gates {
		fmt.Fprintf(&b, "%4d %-6s %v", gi, g.Type, g.Fanin)
		if g.Name != "" {
			fmt.Fprintf(&b, " %q", g.Name)
		}
		b.WriteByte('\n')
	}
	for i, id := range n.Outputs {
		fmt.Fprintf(&b, ".out %s = %d\n", n.OutputNames[i], id)
	}
	return b.String()
}

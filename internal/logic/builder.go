package logic

import (
	"fmt"
	"strings"
)

// Builder incrementally constructs a Network. Gates are structurally hashed:
// requesting the same gate (type + fanins) twice returns the same id, so
// generators can be written naively without blowing up the gate count.
// Builder methods panic on misuse (unknown ids); generator code is expected
// to be correct by construction, and a panic during construction is a bug.
type Builder struct {
	name    string
	gates   []Gate
	inputs  []int
	outputs []int
	onames  []string
	hash    map[string]int
	inNames map[string]int
	const0  int // lazily created; -1 until then
	const1  int
}

// NewBuilder returns an empty Builder for a network with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		hash:    make(map[string]int),
		inNames: make(map[string]int),
		const0:  -1,
		const1:  -1,
	}
}

func (b *Builder) check(ids ...int) {
	for _, id := range ids {
		if id < 0 || id >= len(b.gates) {
			//lint:ignore panicfree documented Builder contract: misuse of the fluent API is a generator bug
			panic(fmt.Sprintf("logic: invalid gate id %d", id))
		}
	}
}

func (b *Builder) add(t GateType, fanin ...int) int {
	b.check(fanin...)
	key := hashKey(t, fanin)
	if id, ok := b.hash[key]; ok {
		return id
	}
	id := len(b.gates)
	fcopy := append([]int(nil), fanin...)
	b.gates = append(b.gates, Gate{Type: t, Fanin: fcopy})
	b.hash[key] = id
	return id
}

func hashKey(t GateType, fanin []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", t)
	for _, f := range fanin {
		fmt.Fprintf(&sb, "%d,", f)
	}
	return sb.String()
}

// Input declares (or returns the existing) primary input with this name.
func (b *Builder) Input(name string) int {
	if name == "" {
		//lint:ignore panicfree documented Builder contract: misuse of the fluent API is a generator bug
		panic("logic: empty input name")
	}
	if id, ok := b.inNames[name]; ok {
		return id
	}
	id := len(b.gates)
	b.gates = append(b.gates, Gate{Type: Input, Name: name})
	b.inputs = append(b.inputs, id)
	b.inNames[name] = id
	return id
}

// Inputs declares n primary inputs named prefix0..prefix{n-1} and returns
// their ids in order.
func (b *Builder) Inputs(prefix string, n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = b.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// Const0 returns the constant-false gate (created on first use).
func (b *Builder) Const0() int {
	if b.const0 < 0 {
		b.const0 = b.add(Const0)
	}
	return b.const0
}

// Const1 returns the constant-true gate (created on first use).
func (b *Builder) Const1() int {
	if b.const1 < 0 {
		b.const1 = b.add(Const1)
	}
	return b.const1
}

// Buf returns a buffer of x (hashed, so it is effectively an alias).
func (b *Builder) Buf(x int) int { return b.add(Buf, x) }

// Not returns the negation of x. Double negation is collapsed.
func (b *Builder) Not(x int) int {
	b.check(x)
	g := b.gates[x]
	switch g.Type {
	case Not:
		return g.Fanin[0]
	case Const0:
		return b.Const1()
	case Const1:
		return b.Const0()
	}
	return b.add(Not, x)
}

// nary builds an n-ary gate, flattening trivial cases.
func (b *Builder) nary(t GateType, xs []int) int {
	if len(xs) == 0 {
		// Empty AND is true, empty OR/XOR is false.
		switch t {
		case And:
			return b.Const1()
		case Or, Xor:
			return b.Const0()
		case Nand:
			return b.Const0()
		case Nor, Xnor:
			return b.Const1()
		}
	}
	if len(xs) == 1 {
		switch t {
		case And, Or, Xor:
			return b.Buf(xs[0])
		case Nand, Nor, Xnor:
			return b.Not(xs[0])
		}
	}
	return b.add(t, xs...)
}

// And returns the conjunction of the given gates.
func (b *Builder) And(xs ...int) int { return b.nary(And, xs) }

// Or returns the disjunction of the given gates.
func (b *Builder) Or(xs ...int) int { return b.nary(Or, xs) }

// Nand returns the negated conjunction of the given gates.
func (b *Builder) Nand(xs ...int) int { return b.nary(Nand, xs) }

// Nor returns the negated disjunction of the given gates.
func (b *Builder) Nor(xs ...int) int { return b.nary(Nor, xs) }

// Xor returns the exclusive-or of the given gates.
func (b *Builder) Xor(xs ...int) int { return b.nary(Xor, xs) }

// Xnor returns the negated exclusive-or of the given gates.
func (b *Builder) Xnor(xs ...int) int { return b.nary(Xnor, xs) }

// Mux returns sel ? d1 : d0.
func (b *Builder) Mux(sel, d0, d1 int) int { return b.add(Mux, sel, d0, d1) }

// Implies returns !x | y.
func (b *Builder) Implies(x, y int) int { return b.Or(b.Not(x), y) }

// Output declares a primary output with the given name driven by gate id.
// Declaring the same name twice panics.
func (b *Builder) Output(name string, id int) {
	b.check(id)
	for _, nm := range b.onames {
		if nm == name {
			//lint:ignore panicfree documented Builder contract: misuse of the fluent API is a generator bug
			panic(fmt.Sprintf("logic: duplicate output %q", name))
		}
	}
	b.outputs = append(b.outputs, id)
	b.onames = append(b.onames, name)
}

// NumGates reports the number of gates added so far.
func (b *Builder) NumGates() int { return len(b.gates) }

// Build finalizes and returns the Network. The builder remains usable but
// further modifications do not affect the returned network's slices beyond
// shared backing arrays; callers should Build once.
func (b *Builder) Build() *Network {
	n := &Network{
		Name:        b.name,
		Gates:       append([]Gate(nil), b.gates...),
		Inputs:      append([]int(nil), b.inputs...),
		Outputs:     append([]int(nil), b.outputs...),
		OutputNames: append([]string(nil), b.onames...),
	}
	if err := n.Validate(); err != nil {
		//lint:ignore panicfree unreachable unless the Builder itself is buggy: every id was checked on entry
		panic(fmt.Sprintf("logic: builder produced invalid network: %v", err))
	}
	return n
}

// AddFullAdder builds a 1-bit full adder and returns (sum, carry).
func (b *Builder) AddFullAdder(x, y, cin int) (sum, cout int) {
	sum = b.Xor(x, y, cin)
	cout = b.Or(b.And(x, y), b.And(x, cin), b.And(y, cin))
	return sum, cout
}

// AddRippleAdder builds an n-bit ripple-carry adder over equal-length
// operand slices (LSB first) and returns the sum bits and the carry out.
func (b *Builder) AddRippleAdder(xs, ys []int, cin int) (sums []int, cout int) {
	if len(xs) != len(ys) {
		//lint:ignore panicfree documented Builder contract: misuse of the fluent API is a generator bug
		panic("logic: AddRippleAdder operand width mismatch")
	}
	c := cin
	sums = make([]int, len(xs))
	for i := range xs {
		sums[i], c = b.AddFullAdder(xs[i], ys[i], c)
	}
	return sums, c
}

package wirelimit

import (
	"errors"
	"testing"
)

func TestCheckDim(t *testing.T) {
	for _, n := range []int{0, 1, MaxDim} {
		if err := CheckDim("rows", n); err != nil {
			t.Errorf("CheckDim(%d): unexpected error %v", n, err)
		}
	}
	for _, n := range []int{-1, MaxDim + 1, 1 << 40} {
		err := CheckDim("rows", n)
		if err == nil {
			t.Fatalf("CheckDim(%d): want error", n)
		}
		var le *LimitError
		if !errors.As(err, &le) {
			t.Fatalf("CheckDim(%d): want *LimitError, got %T", n, err)
		}
		if le.Got != n || le.Max != MaxDim || le.What != "rows" {
			t.Errorf("CheckDim(%d): bad fields %+v", n, le)
		}
	}
}

func TestCheckCount(t *testing.T) {
	if err := CheckCount("inputs", 10, 10); err != nil {
		t.Errorf("at cap: %v", err)
	}
	if err := CheckCount("inputs", 11, 10); err == nil {
		t.Error("above cap: want error")
	}
	// Non-positive cap falls back to MaxCount.
	if err := CheckCount("inputs", MaxCount, 0); err != nil {
		t.Errorf("default cap at MaxCount: %v", err)
	}
	if err := CheckCount("inputs", MaxCount+1, 0); err == nil {
		t.Error("default cap above MaxCount: want error")
	}
}

func TestCheckCells(t *testing.T) {
	if err := CheckCells("design", 256, 256, 1<<16); err != nil {
		t.Errorf("256x256 within 2^16 cells: %v", err)
	}
	if err := CheckCells("design", 257, 256, 1<<16); err == nil {
		t.Error("257x256 beyond 2^16 cells: want error")
	}
	// The historical xbar hole: a huge row count with zero columns passes a
	// product-only guard but must fail the per-dimension cap.
	if err := CheckCells("design", 1<<40, 0, 1<<31); err == nil {
		t.Error("2^40 x 0: want per-dimension error")
	}
	if err := CheckCells("design", -1, 4, 0); err == nil {
		t.Error("negative rows: want error")
	}
	// Default cap: full MaxDim x MaxDim is allowed.
	if err := CheckCells("design", MaxDim, MaxDim, 0); err != nil {
		t.Errorf("MaxDim x MaxDim under default cap: %v", err)
	}
}

func TestCheckPerm(t *testing.T) {
	if err := CheckPerm("var_order", nil); err != nil {
		t.Errorf("nil perm: %v", err)
	}
	if err := CheckPerm("var_order", []int{2, 0, 1}); err != nil {
		t.Errorf("valid perm: %v", err)
	}
	if err := CheckPerm("var_order", []int{0, -3}); err == nil {
		t.Error("negative entry: want error")
	}
	if err := CheckPerm("var_order", []int{MaxDim + 1}); err == nil {
		t.Error("oversized entry: want error")
	}
	var le *LimitError
	err := CheckPerm("var_order", []int{0, 1, 1 << 30})
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.What != "var_order entry 2" {
		t.Errorf("What = %q, want entry index in message", le.What)
	}
}

func TestLimitErrorMessages(t *testing.T) {
	if got := (&LimitError{What: "rows", Got: -2, Max: 5}).Error(); got != "wirelimit: rows is negative (-2)" {
		t.Errorf("negative message: %q", got)
	}
	if got := (&LimitError{What: "rows", Got: 9, Max: 5}).Error(); got != "wirelimit: rows 9 exceeds the 5 cap" {
		t.Errorf("cap message: %q", got)
	}
}

// Package wirelimit centralizes the bounds checks every versioned wire
// decoder must apply to attacker-controlled sizes before allocating.
//
// The repo has shipped the same bug class twice: a few-byte request body
// declaring an absurd dimension (a multi-terabyte defect map, a dense
// partition-tile pre-allocation) drove a decoder's up-front allocation out
// of memory. Each fix grew an ad-hoc cap in one decoder. This package is
// the single place those caps live, so new wire formats inherit them and
// the allocbound static analyzer (internal/lint) has one canonical
// sanitizer to recognize: an integer read off the wire that has passed
// CheckDim/CheckCount/CheckCells is bounded, everything else is not.
//
// All checks return a typed *LimitError so transports can map violations
// to client errors (compactd turns them into 400s) and tests can assert on
// the limit that fired rather than on message prose.
package wirelimit

import "fmt"

// MaxDim bounds each dimension (rows or columns) of any wire-decoded
// crossbar-shaped object: designs, defect maps, partition tiles,
// placement permutations. 65536 lines per side is far beyond any
// fabricated crossbar, and it keeps rows*cols within 2^32 so int64 cell
// keys can never overflow or collide.
const MaxDim = 1 << 16

// MaxCount is the default bound for wire-declared element counts that are
// not crossbar dimensions: parser .i/.o declarations, output lists, cube
// counts. It bounds the per-element allocation a decoder performs before
// it has seen the elements themselves.
const MaxCount = 1 << 20

// LimitError reports a wire-declared size that exceeds its cap. What names
// the offending quantity ("defect map rows", "pla .i inputs"), Got is the
// declared value and Max the cap it broke (negative values report Max as
// the unchanged cap with Got < 0).
type LimitError struct {
	What string
	Got  int
	Max  int
}

func (e *LimitError) Error() string {
	if e.Got < 0 {
		return fmt.Sprintf("wirelimit: %s is negative (%d)", e.What, e.Got)
	}
	return fmt.Sprintf("wirelimit: %s %d exceeds the %d cap", e.What, e.Got, e.Max)
}

// CheckDim validates a wire-declared crossbar dimension: 0 <= n <= MaxDim.
func CheckDim(what string, n int) error {
	return CheckCount(what, n, MaxDim)
}

// CheckCount validates a wire-declared element count against an explicit
// cap: 0 <= n <= max. A non-positive max falls back to MaxCount.
func CheckCount(what string, n, max int) error {
	if max <= 0 {
		max = MaxCount
	}
	if n < 0 || n > max {
		return &LimitError{What: what, Got: n, Max: max}
	}
	return nil
}

// CheckPerm validates a wire-declared line list or permutation: at most
// MaxDim entries, each in [0, MaxDim]. Structural properties beyond bounds
// (distinctness, completeness) remain the caller's job.
func CheckPerm(what string, perm []int) error {
	if err := CheckDim(what+" length", len(perm)); err != nil {
		return err
	}
	for i, v := range perm {
		if err := CheckDim(fmt.Sprintf("%s entry %d", what, i), v); err != nil {
			return err
		}
	}
	return nil
}

// CheckCells validates a wire-declared rows x cols dense extent: both
// dimensions pass CheckDim and the product stays within maxCells (falling
// back to MaxDim*MaxDim, the largest extent CheckDim-bounded sides can
// span). The product check runs on the already-bounded sides, so it cannot
// overflow.
func CheckCells(what string, rows, cols, maxCells int) error {
	if err := CheckDim(what+" rows", rows); err != nil {
		return err
	}
	if err := CheckDim(what+" cols", cols); err != nil {
		return err
	}
	if maxCells <= 0 {
		maxCells = MaxDim * MaxDim
	}
	if rows > 0 && cols > maxCells/rows {
		return &LimitError{What: what + " cells", Got: rows * cols, Max: maxCells}
	}
	return nil
}

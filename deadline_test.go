package compact_test

import (
	"context"
	"errors"
	"testing"
	"time"

	compact "compact"
)

// TestSynthesizeContextPreCancelled: a dead context on entry returns its
// error promptly, before any BDD construction or solving.
func TestSynthesizeContextPreCancelled(t *testing.T) {
	nw, ok := compact.Benchmark("ctrl")
	if !ok {
		t.Fatal("benchmark ctrl missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := compact.SynthesizeContext(ctx, nw, compact.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Errorf("pre-cancelled synthesis took %v", e)
	}
}

// TestSynthesizeTimeLimitBounded: Options.TimeLimit is a deadline on one
// context shared by the whole pipeline, so synthesis wall clock must not
// overshoot it by more than a scheduling tolerance even when the exact
// solver would want far longer.
func TestSynthesizeTimeLimitBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	nw, ok := compact.Benchmark("int2float")
	if !ok {
		t.Fatal("benchmark int2float missing")
	}
	budget := 1500 * time.Millisecond
	start := time.Now()
	res, err := compact.Synthesize(nw, compact.Options{Method: compact.MethodMIP, TimeLimit: budget})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted synthesis failed instead of degrading: %v", err)
	}
	if limit := budget + budget/5; elapsed > limit {
		t.Errorf("TimeLimit=%v overshot: elapsed %v > %v", budget, elapsed, limit)
	}
	if err := res.Verify(12, 200, 1); err != nil {
		t.Errorf("degraded design wrong: %v", err)
	}
}

// TestPortfolioMatchesBestSingleMethod: on the bundled Table I circuits the
// portfolio must never produce a worse objective than any single method run
// with the same time budget — it returns the best of the race.
func TestPortfolioMatchesBestSingleMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solve comparison")
	}
	const gamma = 0.5
	budget := 20 * time.Second
	for _, name := range []string{"ctrl", "dec", "int2float"} {
		nw, ok := compact.Benchmark(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		port, err := compact.Synthesize(nw, compact.Options{
			Method: compact.MethodPortfolio, Gamma: gamma, GammaSet: true, TimeLimit: budget,
		})
		if err != nil {
			t.Fatalf("%s: portfolio: %v", name, err)
		}
		pObj := float64(port.Stats().S)*gamma + float64(port.Stats().D)*(1-gamma)
		for _, m := range []struct {
			name   string
			method compact.Options
		}{
			{"oct", compact.Options{Method: compact.MethodOCT}},
			{"mip", compact.Options{Method: compact.MethodMIP}},
			{"heuristic", compact.Options{Method: compact.MethodHeuristic}},
		} {
			opts := m.method
			opts.Gamma, opts.GammaSet, opts.TimeLimit = gamma, true, budget
			single, err := compact.Synthesize(nw, opts)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, m.name, err)
			}
			sObj := float64(single.Stats().S)*gamma + float64(single.Stats().D)*(1-gamma)
			if pObj > sObj+1e-9 {
				t.Errorf("%s: portfolio objective %.2f worse than %s's %.2f",
					name, pObj, m.name, sObj)
			}
		}
	}
}

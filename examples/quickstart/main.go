// Quickstart: map the paper's running example f = (a AND b) OR c (Figure 2)
// to a crossbar, print the design, and evaluate it on an input vector.
package main

import (
	"fmt"
	"os"

	"compact/internal/core"
	"compact/internal/logic"
)

func main() {
	// 1. Describe the Boolean function as a network.
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	nw := b.Build()

	// 2. Synthesize a crossbar with the default COMPACT configuration
	//    (shared BDD, gamma = 0.5, alignment on, exact labeling).
	res, err := core.Synthesize(nw, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := res.Stats()
	fmt.Printf("crossbar: %dx%d, semiperimeter %d, max dimension %d\n\n", st.Rows, st.Cols, st.S, st.D)

	// 3. Inspect the design: literals programmed onto memristors, the Vin
	//    input wordline at the bottom, the output wordline on top.
	if err := res.Design.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 4. Evaluate: program the devices for a=1, b=1, c=0 and check the
	//    sneak-path connectivity, exactly the paper's Figure 2(d)-(e).
	out := res.Design.Eval([]bool{true, true, false})
	fmt.Printf("\nf(a=1, b=1, c=0) = %v (expected true)\n", out[0])
	out = res.Design.Eval([]bool{false, true, false})
	fmt.Printf("f(a=0, b=1, c=0) = %v (expected false)\n", out[0])

	// 5. Exhaustively validate the design against the network.
	if err := res.Verify(10, 0, 1); err != nil {
		fmt.Fprintln(os.Stderr, "validation failed:", err)
		os.Exit(1)
	}
	fmt.Println("exhaustive validation: OK")
}

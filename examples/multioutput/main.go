// Multi-output synthesis: a 4-bit ripple-carry adder mapped two ways —
// one shared BDD (SBDD) versus per-output ROBDDs merged by the 1-terminal —
// demonstrating the sharing win of the paper's Section VII and the
// alignment of all five sum outputs onto wordlines.
package main

import (
	"fmt"
	"os"

	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/logic"
)

func main() {
	const width = 4
	b := logic.NewBuilder("adder4")
	xs := b.Inputs("x", width)
	ys := b.Inputs("y", width)
	sums, cout := b.AddRippleAdder(xs, ys, b.Const0())
	for i, s := range sums {
		b.Output(fmt.Sprintf("s%d", i), s)
	}
	b.Output("cout", cout)
	nw := b.Build()
	fmt.Println(nw)

	for _, kind := range []core.BDDKind{core.SeparateROBDDs, core.SBDD} {
		res, err := core.Synthesize(nw, core.Options{
			BDDKind: kind,
			Method:  labeling.MethodMIP,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := res.Stats()
		fmt.Printf("\n%-7s: %3d BDD nodes -> %2dx%-2d crossbar, S=%d, D=%d (labeling %s, optimal=%v)\n",
			kind, res.BDDNodes, st.Rows, st.Cols, st.S, st.D, res.Labeling.Method, res.Labeling.Optimal)

		// Every output must sit on its own sensed wordline.
		for i, row := range res.Design.OutputRows {
			fmt.Printf("  output %-5s -> wordline %d\n", res.Design.OutputNames[i], row)
		}
		if err := res.Verify(8, 0, 1); err != nil {
			fmt.Fprintln(os.Stderr, "validation failed:", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nboth designs validate; the SBDD one is smaller because the")
	fmt.Println("carry chain is shared across all five outputs instead of")
	fmt.Println("being replicated per output.")
}

// Electrical validation: synthesize the ctrl benchmark, then check the
// design twice — logically (sneak-path reachability against the network)
// and electrically (SPICE-lite nodal analysis measuring worst-case output
// voltages), mirroring the paper's SPICE verification of Section VIII.
package main

import (
	"fmt"
	"os"

	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/spice"
)

func main() {
	nw := bench.MustBuild("ctrl")
	fmt.Println(nw)

	res, err := core.Synthesize(nw, core.Options{Method: labeling.MethodMIP})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := res.Stats()
	fmt.Printf("crossbar: %dx%d, %d literal devices, delay %d steps\n",
		st.Rows, st.Cols, st.LitCells, st.Delay)

	// Logical check: exhaustive over the 2^7 input vectors.
	if err := res.Verify(7, 0, 1); err != nil {
		fmt.Fprintln(os.Stderr, "logical validation failed:", err)
		os.Exit(1)
	}
	fmt.Println("logical validation: OK (exhaustive, 128 vectors)")

	// Formal check: the symbolic sneak-path closure proves equivalence
	// over ALL assignments at once — no enumeration, works for any width.
	if err := res.FormalVerify(0); err != nil {
		fmt.Fprintln(os.Stderr, "formal verification failed:", err)
		os.Exit(1)
	}
	fmt.Println("formal verification: design ≡ network proven symbolically")

	// Electrical check: solve the resistive network per vector and report
	// the separation between the weakest 1 and the strongest 0 — for two
	// device models. At this array size (50x35) the textbook 10^3 on/off
	// ratio drowns the signal in aggregate sneak-path leakage; the
	// high-contrast HfO2-class model restores a clean margin. This is the
	// real sneak-path sizing concern flow-based computing papers discuss.
	for _, m := range []struct {
		name  string
		model spice.DeviceModel
	}{
		{"default (Roff/Ron = 10^3)", spice.Default()},
		{"high-contrast (Roff/Ron = 10^5)", spice.HighContrast()},
	} {
		rep, err := spice.Margin(res.Design, nw.Eval, nw.NumInputs(), 7, 0, m.model, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s, %d vectors:\n", m.name, rep.Checked)
		fmt.Printf("  weakest  logic-1 output: %.5f V\n", rep.MinOn)
		fmt.Printf("  strongest logic-0 output: %.5f V\n", rep.MaxOff)
		if rep.Separable {
			fmt.Printf("  separable: any threshold near %.5f V reads correctly\n", (rep.MinOn+rep.MaxOff)/2)
		} else {
			fmt.Printf("  NOT separable at this array size — higher-contrast devices needed\n")
		}
	}
}

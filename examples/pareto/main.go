// Pareto sweep: trade semiperimeter against maximum dimension by sweeping
// the objective weight gamma — the paper's Figure 9 experiment. A decoder
// is the canonical circuit for this trade-off: its BDD is a complete
// binary tree whose 2-coloring is inherently unbalanced (alternate levels
// have very different sizes), so the maximum dimension can only shrink by
// spending extra VH labels — exactly the paper's Figure 7 mechanism.
package main

import (
	"fmt"
	"os"
	"time"

	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/logic"
)

func main() {
	// A 6-to-64 decoder (a small sibling of the EPFL `dec` benchmark).
	b := logic.NewBuilder("dec6")
	sel := b.Inputs("a", 6)
	outs := []int{b.Const1()}
	for _, s := range sel {
		next := make([]int, 0, len(outs)*2)
		ns := b.Not(s)
		for _, o := range outs {
			next = append(next, b.And(o, ns))
		}
		for _, o := range outs {
			next = append(next, b.And(o, s))
		}
		outs = next
	}
	for i, o := range outs {
		b.Output(fmt.Sprintf("y%d", i), o)
	}
	nw := b.Build()
	fmt.Println(nw)

	type pt struct {
		gamma      float64
		rows, cols int
		s, d       int
	}
	var pts []pt
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := core.Synthesize(nw, core.Options{
			Gamma: gamma, GammaSet: true,
			Method:    labeling.MethodMIP,
			TimeLimit: 20 * time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := res.Stats()
		pts = append(pts, pt{gamma, st.Rows, st.Cols, st.S, st.D})
		fmt.Printf("gamma=%.2f: %3d rows x %3d cols (S=%d, D=%d, optimal=%v)\n",
			gamma, st.Rows, st.Cols, st.S, st.D, res.Labeling.Optimal)
		if err := res.Verify(6, 0, 1); err != nil {
			fmt.Fprintln(os.Stderr, "validation failed:", err)
			os.Exit(1)
		}
	}

	fmt.Println("\nnon-dominated designs (no other design has both fewer rows and fewer cols):")
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if (q.rows < p.rows && q.cols <= p.cols) || (q.rows <= p.rows && q.cols < p.cols) {
				dominated = true
				break
			}
		}
		if !dominated {
			fmt.Printf("  (%d, %d) at gamma=%.2f\n", p.rows, p.cols, p.gamma)
		}
	}
	fmt.Printf("\nalignment pins every one of the %d outputs plus the input port\n", nw.NumOutputs())
	fmt.Printf("onto its own wordline, so no labeling can go below %d rows; the\n", nw.NumOutputs()+1)
	fmt.Println("solver proves the tree's natural coloring already optimal at every")
	fmt.Println("gamma — a single-point frontier. On circuits with fewer outputs")
	fmt.Println("(see `experiments fig9`), lowering gamma instead spends extra VH")
	fmt.Println("labels to square the crossbar, shrinking the maximum dimension.")
}

package compact_test

import (
	"fmt"
	"sync"
	"testing"

	compact "compact"
)

// buildParity returns an n-input odd-parity network, a convenient family of
// independent, non-bipartite synthesis workloads.
func buildParity(n int) *compact.Network {
	b := compact.NewBuilder(fmt.Sprintf("par%d", n))
	x := b.Input("x0")
	for i := 1; i < n; i++ {
		x = b.Xor(x, b.Input(fmt.Sprintf("x%d", i)))
	}
	b.Output("p", x)
	return b.Build()
}

// TestSynthesizeConcurrent exercises the full pipeline from two goroutines
// at once on independent networks. Synthesize is documented as safe for
// concurrent use on distinct inputs — each call must build its own BDD
// manager, graphs and solver state; the race detector enforces it.
func TestSynthesizeConcurrent(t *testing.T) {
	t.Parallel()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nw := buildParity(3 + g)
			for iter := 0; iter < 3; iter++ {
				res, err := compact.Synthesize(nw, compact.Options{Gamma: 0.5})
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, iter, err)
					return
				}
				if err := res.Verify(1<<uint(nw.NumInputs()), 0, 1); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, iter, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSynthesizeConcurrentMethods runs distinct labeling methods
// concurrently against the same immutable source network (each Synthesize
// re-derives its own BDD, so sharing the input is legal).
func TestSynthesizeConcurrentMethods(t *testing.T) {
	t.Parallel()
	nw := buildParity(4)
	methods := []compact.Options{
		{Method: compact.MethodOCT},
		{Method: compact.MethodHeuristic},
		{Method: compact.MethodPortfolio},
	}
	var wg sync.WaitGroup
	for i, opts := range methods {
		wg.Add(1)
		go func(i int, opts compact.Options) {
			defer wg.Done()
			res, err := compact.Synthesize(nw, opts)
			if err != nil {
				t.Errorf("method %d: %v", i, err)
				return
			}
			if err := res.Verify(16, 0, 1); err != nil {
				t.Errorf("method %d: %v", i, err)
			}
		}(i, opts)
	}
	wg.Wait()
}

// TestDesignEvalConcurrentFirstUse evaluates a freshly synthesized design
// from many goroutines with no prior warm-up call: the very first Eval
// builds the design's sparse-cell cache lazily, and that build must be safe
// when several Evals race to trigger it (sync.Once in Design.sparseCells;
// the race detector enforces it).
func TestDesignEvalConcurrentFirstUse(t *testing.T) {
	t.Parallel()
	nw := buildParity(5)
	res, err := compact.Synthesize(nw, compact.Options{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := make([]bool, nw.NumInputs())
			for a := 0; a < 1<<uint(len(in)); a++ {
				parity := false
				for i := range in {
					in[i] = a&(1<<uint(i)) != 0
					parity = parity != in[i]
				}
				out := res.Design.Eval(in)
				if out[0] != parity {
					t.Errorf("goroutine %d: Eval(%v) = %v, want %v", g, in, out[0], parity)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

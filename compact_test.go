package compact_test

import (
	"bytes"
	"strings"
	"testing"

	compact "compact"
)

func TestFacadeEndToEnd(t *testing.T) {
	b := compact.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	nw := b.Build()

	res, err := compact.Synthesize(nw, compact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(10, 0, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Design.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Vin") {
		t.Errorf("render missing input port:\n%s", buf.String())
	}
	volts, err := compact.SimulateElectrical(res.Design, []bool{true, true, false}, compact.DefaultDeviceModel())
	if err != nil {
		t.Fatal(err)
	}
	if volts[0] <= 0 {
		t.Errorf("no output voltage for a satisfied function: %v", volts)
	}
}

func TestFacadeBLIFRoundTrip(t *testing.T) {
	src := ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n"
	nw, err := compact.ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compact.WriteBLIF(&buf, nw); err != nil {
		t.Fatal(err)
	}
	if _, err := compact.ParseBLIF(&buf); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestFacadePLA(t *testing.T) {
	src := ".i 2\n.o 1\n11 1\n.e\n"
	nw, err := compact.ParsePLA(strings.NewReader(src), "and2")
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Eval([]bool{true, true})[0] || nw.Eval([]bool{true, false})[0] {
		t.Error("PLA semantics wrong")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := compact.BenchmarkNames()
	if len(names) != 17 {
		t.Fatalf("%d benchmarks, want 17", len(names))
	}
	nw, ok := compact.Benchmark("ctrl")
	if !ok || nw.NumInputs() != 7 {
		t.Fatalf("ctrl lookup failed")
	}
	if _, ok := compact.Benchmark("bogus"); ok {
		t.Error("bogus benchmark found")
	}
}

func TestFacadeROBDDMode(t *testing.T) {
	nw, _ := compact.Benchmark("ctrl")
	res, err := compact.Synthesize(nw, compact.Options{
		BDDKind: compact.SeparateROBDDs,
		Method:  compact.MethodHeuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(7, 0, 1); err != nil {
		t.Fatal(err)
	}
}

// Command marginbench charts variation robustness: for each benchmark
// circuit it synthesizes one crossbar, then sweeps the per-device
// log-normal spread sigma and reports the Monte Carlo yield curve (yield
// and worst-case sensing margin versus sigma versus crossbar size) on the
// high-contrast device model. It also replays the margin-aware placement
// experiment — a deterministic sneak-bridge defect map, plain versus
// MarginAware synthesis — and reports the worst-case margin delta at
// equal array dimensions. Output is a JSON document suitable for tracking
// across commits.
//
// Usage:
//
//	marginbench [-trials 16] [-vectors 32] [-seed 1] [-sigmas 0.05,0.1,0.2]
//	            [-timelimit 15s] [-compare results/BENCH_margin.json]
//	            [-out results/BENCH_margin.json] [circuit ...]
//
// With no circuits it runs the default set (ctrl, cavlc, int2float), the
// same EPFL control benchmarks the partition benchmark tracks. With
// -compare, fresh results are diffed against a committed baseline and
// regressions (yield drops, collapsed margins, a vanished margin-aware
// delta) are warned about on stderr — warn-only, the exit status never
// depends on the comparison, matching the benchjson convention.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/defect"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/spice"
	"compact/internal/xbar"
)

// yieldPoint is one (circuit, sigma) sample of the yield curve.
type yieldPoint struct {
	Sigma       float64 `json:"sigma"`
	Trials      int     `json:"trials"`
	Vectors     int     `json:"vectors"`
	Exhaustive  bool    `json:"exhaustive"`
	Yield       float64 `json:"yield"`
	FailTrials  int     `json:"fail_trials"`
	WorstMargin float64 `json:"worst_margin"`
	WallMS      float64 `json:"wall_ms"`
	Err         string  `json:"error,omitempty"`
}

type entry struct {
	Circuit string       `json:"circuit"`
	Rows    int          `json:"rows"`
	Cols    int          `json:"cols"`
	S       int          `json:"s"` // semiperimeter, the size axis of the curve
	SynthMS float64      `json:"synth_ms"`
	Points  []yieldPoint `json:"points"`
	// Margin-aware placement before/after on the sneak-bridge defect map:
	// worst-case margin of the plain verified-repair placement versus the
	// MarginAware one, at identical array dimensions.
	MarginPlain float64 `json:"margin_plain"`
	MarginAware float64 `json:"margin_aware"`
	MarginDelta float64 `json:"margin_delta"`
	AwareMS     float64 `json:"aware_ms"`
	MarginErr   string  `json:"margin_error,omitempty"`
	Err         string  `json:"error,omitempty"`
}

type report struct {
	Model   string    `json:"model"`
	Trials  int       `json:"trials"`
	Vectors int       `json:"vectors"`
	Seed    uint64    `json:"seed"`
	Sigmas  []float64 `json:"sigmas"`
	Entries []entry   `json:"entries"`
}

func main() {
	var (
		trials    = flag.Int("trials", 16, "Monte Carlo trials per sigma point")
		vectors   = flag.Int("vectors", 32, "input vectors checked per trial (clamped to 2^inputs)")
		seed      = flag.Uint64("seed", 1, "deterministic root seed")
		sigmas    = flag.String("sigmas", "0.05,0.1,0.2", "comma-separated log-normal sigma sweep")
		timeLimit = flag.Duration("timelimit", 15*time.Second, "per-synthesis solve budget")
		baseline  = flag.String("compare", "", "baseline JSON file to diff against (warn-only)")
		outPath   = flag.String("out", "results/BENCH_margin.json", "output JSON path")
	)
	flag.Parse()
	circuits := flag.Args()
	if len(circuits) == 0 {
		circuits = []string{"ctrl", "cavlc", "int2float"}
	}
	sweep, err := parseSigmas(*sigmas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marginbench:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, circuits, sweep, *trials, *vectors, *seed, *timeLimit, *baseline, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "marginbench:", err)
		os.Exit(1)
	}
}

func parseSigmas(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad sigma %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty sigma sweep")
	}
	return out, nil
}

func run(ctx context.Context, circuits []string, sweep []float64, trials, vectors int, seed uint64, timeLimit time.Duration, baseline, outPath string) error {
	rep := report{Model: "highcontrast", Trials: trials, Vectors: vectors, Seed: seed, Sigmas: sweep}
	model := spice.HighContrast()
	for _, name := range circuits {
		g, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		nw := g.Build()
		e := entry{Circuit: name}

		t0 := time.Now()
		res, err := core.SynthesizeContext(ctx, nw, core.Options{
			Method: labeling.MethodHeuristic, TimeLimit: timeLimit,
		})
		e.SynthMS = millis(time.Since(t0))
		if err != nil {
			e.Err = fmt.Sprintf("synthesize: %v", err)
			rep.Entries = append(rep.Entries, e)
			continue
		}
		d := res.Design
		e.Rows, e.Cols, e.S = d.Rows, d.Cols, res.Stats().S

		for _, sigma := range sweep {
			p := yieldPoint{Sigma: sigma}
			t0 = time.Now()
			mc, err := spice.MonteCarloContext(ctx, d, d.Eval, len(d.VarNames),
				spice.Env{Model: model},
				spice.Variation{SigmaOn: sigma, SigmaOff: sigma},
				spice.MonteCarloOptions{Trials: trials, Vectors: vectors, Seed: seed})
			p.WallMS = millis(time.Since(t0))
			if err != nil {
				p.Err = err.Error()
			} else {
				p.Trials, p.Vectors, p.Exhaustive = mc.Trials, mc.Vectors, mc.Exhaustive
				p.Yield, p.FailTrials, p.WorstMargin = mc.Yield, mc.FailTrials, mc.WorstMargin
			}
			e.Points = append(e.Points, p)
			fmt.Printf("%-10s %3dx%-3d sigma=%.2f  yield=%.3f worst_margin=%+.4f (%.0fms)\n",
				name, e.Rows, e.Cols, sigma, p.Yield, p.WorstMargin, p.WallMS)
		}

		t0 = time.Now()
		marginAwareDelta(ctx, nw, d, timeLimit, &e)
		e.AwareMS = millis(time.Since(t0))
		if e.MarginErr == "" {
			fmt.Printf("%-10s margin-aware placement: plain %+.4f -> aware %+.4f (delta %+.4f, %.0fms)\n",
				name, e.MarginPlain, e.MarginAware, e.MarginDelta, e.AwareMS)
		} else {
			fmt.Printf("%-10s margin-aware placement: skipped (%s)\n", name, e.MarginErr)
		}
		rep.Entries = append(rep.Entries, e)
	}
	if baseline != "" {
		compare(os.Stderr, rep, baseline)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

// marginAwareDelta reruns synthesis against a deterministic sneak-bridge
// defect map — a spare wordline and bitline, with the two devices joining
// the spare bitline to the input wordline and the first output wordline
// stuck ON — once with the plain verified-repair loop and once with
// MarginAware, and records the worst-case margin of both placements. The
// bridge leaves every placement compatible (the faults sit on a spare
// bitline), so any delta is purely the electrical secondary objective.
func marginAwareDelta(ctx context.Context, nw *logic.Network, d *xbar.Design, timeLimit time.Duration, e *entry) {
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		e.MarginErr = err.Error()
		return
	}
	spareCol := d.Cols
	if err := dm.Set(d.InputRow, spareCol, defect.StuckOn); err != nil {
		e.MarginErr = err.Error()
		return
	}
	if len(d.OutputRows) == 0 {
		e.MarginErr = "design has no output rows"
		return
	}
	if err := dm.Set(d.OutputRows[0], spareCol, defect.StuckOn); err != nil {
		e.MarginErr = err.Error()
		return
	}

	base := core.Options{
		Method: labeling.MethodHeuristic, TimeLimit: timeLimit,
		Defects: dm, DefectSeed: 5,
	}
	plain, err := core.SynthesizeContext(ctx, nw, base)
	if err != nil {
		e.MarginErr = fmt.Sprintf("plain: %v", err)
		return
	}
	aware := base
	aware.MarginAware = true
	tuned, err := core.SynthesizeContext(ctx, nw, aware)
	if err != nil {
		e.MarginErr = fmt.Sprintf("aware: %v", err)
		return
	}

	mPlain, err := placedMargin(ctx, plain, dm, base.DefectSeed)
	if err != nil {
		e.MarginErr = fmt.Sprintf("scoring plain: %v", err)
		return
	}
	mAware, err := placedMargin(ctx, tuned, dm, base.DefectSeed)
	if err != nil {
		e.MarginErr = fmt.Sprintf("scoring aware: %v", err)
		return
	}
	e.MarginPlain, e.MarginAware, e.MarginDelta = mPlain, mAware, mAware-mPlain
}

// placedMargin scores a placed result the way the margin-aware loop does:
// worst-case simulated margin of the design bound to the defective array.
func placedMargin(ctx context.Context, res *core.Result, dm *defect.Map, seed uint64) (float64, error) {
	const exhaustiveLimit, samples = 6, 32
	rep, err := spice.MarginContext(ctx, res.Design, res.Design.Eval,
		len(res.Design.VarNames), exhaustiveLimit, samples,
		spice.Env{Model: spice.Default(), Defects: dm, Placement: res.Placement}, seed)
	if err != nil {
		return 0, err
	}
	return rep.MinOn - rep.MaxOff, nil
}

// marginDropWarn is the absolute worst-case-margin drop (in volts) below
// the committed baseline that triggers a comparison warning. Smaller
// wobble is expected run-to-run noise from the solver's placement choices.
const marginDropWarn = 0.01

// compare warns (on w) about fresh results that regress against the
// committed baseline: a yield drop at any (circuit, sigma) point, a
// worst-case margin more than marginDropWarn below the baseline, or a
// margin-aware placement delta that was positive and no longer is.
// Warn-only by design — a missing or unreadable baseline skips the
// comparison, and nothing here affects the exit status.
func compare(w io.Writer, fresh report, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		_, _ = fmt.Fprintf(w, "marginbench: compare: %v (skipping comparison)\n", err)
		return
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		_, _ = fmt.Fprintf(w, "marginbench: compare: parsing %s: %v (skipping comparison)\n", path, err)
		return
	}
	type point struct {
		yield, margin float64
	}
	basePoints := make(map[string]point)
	baseDelta := make(map[string]float64)
	for _, e := range base.Entries {
		for _, p := range e.Points {
			if p.Err == "" {
				basePoints[fmt.Sprintf("%s@%g", e.Circuit, p.Sigma)] = point{p.Yield, p.WorstMargin}
			}
		}
		if e.MarginErr == "" {
			baseDelta[e.Circuit] = e.MarginDelta
		}
	}
	for _, e := range fresh.Entries {
		for _, p := range e.Points {
			key := fmt.Sprintf("%s@%g", e.Circuit, p.Sigma)
			b, ok := basePoints[key]
			if !ok || p.Err != "" {
				continue
			}
			if p.Yield < b.yield {
				_, _ = fmt.Fprintf(w, "marginbench: compare: %s yield %.3f < baseline %.3f\n", key, p.Yield, b.yield)
			}
			if p.WorstMargin < b.margin-marginDropWarn {
				_, _ = fmt.Fprintf(w, "marginbench: compare: %s worst margin %+.4f < baseline %+.4f\n", key, p.WorstMargin, b.margin)
			}
		}
		if b, ok := baseDelta[e.Circuit]; ok && e.MarginErr == "" && b > 0 && e.MarginDelta <= 0 {
			_, _ = fmt.Fprintf(w, "marginbench: compare: %s margin-aware delta regressed to %+.4f (baseline %+.4f)\n",
				e.Circuit, e.MarginDelta, b)
		}
	}
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Command compactd serves the COMPACT synthesis pipeline over HTTP: POST
// a circuit (BLIF, PLA or structural Verilog) to /v1/synthesize and get
// back the crossbar design as JSON. Repeated requests for the same
// circuit and options are served byte-identically from a
// content-addressed cache; concurrent identical requests share one solve.
//
// Usage:
//
//	compactd [-addr :8650] [-workers N] [-default-time-limit 30s] ...
//	compactd -selfcheck   # boot on a loopback port, run a smoke request, exit
//
// See GET /v1/benchmarks for the built-in circuit generators, /healthz
// for liveness, /debug/vars for metrics and /debug/pprof for profiles.
// SIGINT/SIGTERM trigger a graceful drain.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"compact/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("compactd", flag.ContinueOnError)
	addr := fs.String("addr", ":8650", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 0, "result cache entry bound (0 = 512)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte bound (0 = 256 MiB)")
	storeDir := fs.String("store-dir", "", "persistent result store directory (empty = memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "persistent store byte bound (0 = 1 GiB)")
	maxJobs := fs.Int("max-jobs", 0, "async job table bound, live + finished (0 = 256)")
	defaultLimit := fs.Duration("default-time-limit", 0, "solve budget for requests that set none (0 = 30s)")
	maxLimit := fs.Duration("max-time-limit", 0, "largest solve budget a request may ask for (0 = 5m)")
	selfcheck := fs.Bool("selfcheck", false, "boot on a loopback port, run a smoke request, exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(ctx, server.Config{
		Workers:          *workers,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		StoreDir:         *storeDir,
		StoreMaxBytes:    *storeMaxBytes,
		MaxJobs:          *maxJobs,
		DefaultTimeLimit: *defaultLimit,
		MaxTimeLimit:     *maxLimit,
	})
	if err != nil {
		log.Printf("compactd: %v", err)
		return 1
	}

	if *selfcheck {
		if err := runSelfcheck(ctx, srv); err != nil {
			log.Printf("compactd: selfcheck FAILED: %v", err)
			return 1
		}
		log.Printf("compactd: selfcheck ok")
		return 0
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("compactd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Printf("compactd: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	log.Printf("compactd: draining (interrupt again to force exit)")
	stop() // restore default signal handling so a second ^C kills us
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("compactd: shutdown: %v", err)
		return 1
	}
	return 0
}

// selfcheckBLIF is the smoke circuit: f = (a AND b) OR c.
const selfcheckBLIF = `.model selfcheck
.inputs a b c
.outputs f
.names a b w
11 1
.names w c f
1- 1
-1 1
.end
`

// runSelfcheck boots the full HTTP stack on an ephemeral loopback port and
// exercises the health, benchmark and synthesis endpoints, including the
// miss-then-hit cache contract. Used by CI as a post-build smoke test.
func runSelfcheck(ctx context.Context, srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = httpSrv.Serve(ln)
	}()
	defer func() {
		_ = httpSrv.Close()
		<-served // don't leak the serve goroutine past the selfcheck
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	status, _, body, err := do(ctx, client, http.MethodGet, base+"/healthz", "")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: status %d, err %v", status, err)
	}
	if !bytes.Contains(body, []byte(`"ok"`)) {
		return fmt.Errorf("healthz: unexpected body %s", body)
	}

	status, _, body, err = do(ctx, client, http.MethodGet, base+"/v1/benchmarks", "")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("benchmarks: status %d, err %v", status, err)
	}
	if !bytes.Contains(body, []byte(`"ctrl"`)) {
		return fmt.Errorf("benchmarks: registry missing expected entries: %s", body)
	}

	req := fmt.Sprintf(`{"circuit": %q, "options": {"method": "heuristic", "time_limit_ms": 10000}}`, selfcheckBLIF)
	status, disp, first, err := do(ctx, client, http.MethodPost, base+"/v1/synthesize", req)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("synthesize: status %d, err %v, body %s", status, err, first)
	}
	if disp != "miss" {
		return fmt.Errorf("synthesize: first request disposition %q, want miss", disp)
	}
	status, disp, second, err := do(ctx, client, http.MethodPost, base+"/v1/synthesize", req)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("synthesize (repeat): status %d, err %v", status, err)
	}
	if disp != "hit" {
		return fmt.Errorf("synthesize (repeat): disposition %q, want hit", disp)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("cache hit body differs from miss body")
	}

	// Margin roundtrip: the same circuit through the Monte Carlo margin
	// analyzer, miss-then-hit, with a sane deterministic yield.
	mreq := fmt.Sprintf(`{"circuit": %q, "options": {"method": "heuristic", "time_limit_ms": 10000}, "margin": {"model": "highcontrast", "sigma": 0.1, "trials": 8, "vectors": 8, "seed": 1}}`, selfcheckBLIF)
	status, disp, mfirst, err := do(ctx, client, http.MethodPost, base+"/v1/margin", mreq)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("margin: status %d, err %v, body %s", status, err, mfirst)
	}
	if disp != "miss" {
		return fmt.Errorf("margin: first request disposition %q, want miss", disp)
	}
	var mrep struct {
		Report struct {
			Trials int     `json:"trials"`
			Yield  float64 `json:"yield"`
		} `json:"report"`
	}
	if err := json.Unmarshal(mfirst, &mrep); err != nil {
		return fmt.Errorf("margin: bad response %s: %v", mfirst, err)
	}
	if mrep.Report.Trials != 8 || mrep.Report.Yield < 0 || mrep.Report.Yield > 1 {
		return fmt.Errorf("margin: implausible report %s", mfirst)
	}
	status, disp, msecond, err := do(ctx, client, http.MethodPost, base+"/v1/margin", mreq)
	if err != nil || status != http.StatusOK || disp != "hit" {
		return fmt.Errorf("margin (repeat): status %d, disposition %q, err %v", status, disp, err)
	}
	if !bytes.Equal(mfirst, msecond) {
		return fmt.Errorf("margin cache hit body differs from miss body")
	}

	// Async roundtrip: submit the same request as a job, poll to done,
	// and check the result body matches the synchronous one exactly.
	status, _, body, err = do(ctx, client, http.MethodPost, base+"/v1/jobs", req)
	if err != nil || status != http.StatusAccepted {
		return fmt.Errorf("job submit: status %d, err %v, body %s", status, err, body)
	}
	var sub struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		return fmt.Errorf("job submit: bad response %s: %v", body, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, _, body, err = do(ctx, client, http.MethodGet, base+sub.StatusURL, "")
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("job status: status %d, err %v, body %s", status, err, body)
		}
		var st struct {
			Status    string `json:"status"`
			ResultURL string `json:"result_url"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("job status: bad response %s: %v", body, err)
		}
		if st.Status == "done" {
			status, _, body, err = do(ctx, client, http.MethodGet, base+st.ResultURL, "")
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("job result: status %d, err %v, body %s", status, err, body)
			}
			if !bytes.Equal(body, first) {
				return fmt.Errorf("job result body differs from synchronous body")
			}
			break
		}
		if st.Status == "failed" {
			return fmt.Errorf("job failed: %s", body)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job did not finish in time; last status %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

// do issues one request and returns the status, X-Compactd-Cache header
// and body.
func do(ctx context.Context, client *http.Client, method, url, body string) (int, string, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, "", nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Compactd-Cache"), data, nil
}

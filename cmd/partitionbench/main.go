// Command partitionbench measures what tiling costs: for each benchmark
// circuit it synthesizes once unconstrained (the single-crossbar baseline
// semiperimeter) and once under per-tile caps with the partition fallback,
// then reports tile counts, the total-semiperimeter overhead of the
// cascade versus the unconstrained design, and wall clock — as a JSON
// document suitable for tracking across commits.
//
// Usage:
//
//	partitionbench [-caps 32] [-timelimit 15s] [-out results/BENCH_partition.json] [circuit ...]
//
// With no circuits it runs the default set (ctrl, cavlc, int2float) —
// EPFL control benchmarks small enough to finish quickly yet too big for
// one 32x32 tile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"compact/internal/bench"
	"compact/internal/core"
)

type entry struct {
	Circuit string `json:"circuit"`
	Caps    int    `json:"caps"` // per-tile MaxRows = MaxCols
	// Baseline: the unconstrained single-crossbar synthesis.
	BaselineS  int     `json:"baseline_s"`
	BaselineMS float64 `json:"baseline_ms"`
	// Partitioned: the tile cascade under the caps.
	Tiles       int     `json:"tiles"`
	CutNets     int     `json:"cut_nets"`
	TotalS      int     `json:"total_s"`
	Depth       int     `json:"depth"`
	OverheadPct float64 `json:"overhead_pct"` // (TotalS - BaselineS) / BaselineS
	WallMS      float64 `json:"wall_ms"`
	Err         string  `json:"error,omitempty"`
}

type report struct {
	Caps    int     `json:"caps"`
	Entries []entry `json:"entries"`
}

func main() {
	var (
		caps      = flag.Int("caps", 32, "per-tile row and column cap")
		timeLimit = flag.Duration("timelimit", 15*time.Second, "per-synthesis solve budget")
		outPath   = flag.String("out", "results/BENCH_partition.json", "output JSON path")
	)
	flag.Parse()
	circuits := flag.Args()
	if len(circuits) == 0 {
		circuits = []string{"ctrl", "cavlc", "int2float"}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, circuits, *caps, *timeLimit, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "partitionbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, circuits []string, caps int, timeLimit time.Duration, outPath string) error {
	rep := report{Caps: caps}
	for _, name := range circuits {
		g, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		nw := g.Build()
		e := entry{Circuit: name, Caps: caps}

		t0 := time.Now()
		base, err := core.SynthesizeContext(ctx, nw, core.Options{TimeLimit: timeLimit})
		e.BaselineMS = millis(time.Since(t0))
		if err != nil {
			e.Err = fmt.Sprintf("baseline: %v", err)
			rep.Entries = append(rep.Entries, e)
			continue
		}
		e.BaselineS = base.Stats().S

		t0 = time.Now()
		res, err := core.SynthesizeContext(ctx, nw, core.Options{
			TimeLimit: timeLimit, MaxRows: caps, MaxCols: caps, Partition: true,
		})
		e.WallMS = millis(time.Since(t0))
		if err != nil {
			e.Err = fmt.Sprintf("partitioned: %v", err)
			rep.Entries = append(rep.Entries, e)
			continue
		}
		if res.Plan == nil {
			// The circuit fit one tile after all; report it as a 1-tile
			// cascade with no cut nets.
			st := res.Stats()
			e.Tiles, e.TotalS = 1, st.S
		} else {
			st := res.Plan.Stats()
			e.Tiles, e.CutNets, e.TotalS, e.Depth = st.Tiles, st.CutNets, st.TotalS, st.Depth
		}
		if e.BaselineS > 0 {
			e.OverheadPct = 100 * float64(e.TotalS-e.BaselineS) / float64(e.BaselineS)
		}
		fmt.Printf("%-10s baseline S=%-4d (%.0fms)  tiled: %d tiles total_S=%d (%+.1f%%) depth=%d (%.0fms)\n",
			name, e.BaselineS, e.BaselineMS, e.Tiles, e.TotalS, e.OverheadPct, e.Depth, e.WallMS)
		rep.Entries = append(rep.Entries, e)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

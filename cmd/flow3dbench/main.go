// Command flow3dbench measures the FLOW-3D payoff axis: semiperimeter and
// solve time versus the wire-layer count K. For each benchmark circuit it
// synthesizes at K = 1, 2, 3, 4 (K <= 2 is the classic two-layer
// pipeline; K >= 3 the layered stack), verifies every result through the
// composed sneak-path checkers, and reports the S-vs-K curve as a JSON
// document suitable for tracking across commits.
//
// Usage:
//
//	flow3dbench [-method heuristic] [-timelimit 15s]
//	            [-out results/BENCH_3d.json] [-compare results/BENCH_3d.json]
//	            [circuit ...]
//
// With no circuits it runs the default set (ctrl, cavlc, int2float) — the
// EPFL control benchmarks the paper's Table I reports.
//
// With -compare, fresh results are diffed against a committed baseline and
// regressions (a larger semiperimeter or a lost verification at the same
// (circuit, K) point) are reported on stderr as warnings; the exit status
// stays zero. The hard gate is the repo's test suite, not wall-clock noise
// on shared CI runners.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"compact/internal/bench"
	"compact/internal/core"
)

// layerSweep is the K axis every circuit is swept over. 1 and 2 both mean
// the classic pipeline (1 canonicalizes to 2) — keeping both documents the
// clamp in the published curve.
var layerSweep = []int{1, 2, 3, 4}

type entry struct {
	Circuit string `json:"circuit"`
	K       int    `json:"k"`
	// S/D/Rows/Cols are the stack's footprint statistics (for K <= 2, the
	// classic design's).
	S       int   `json:"s"`
	D       int   `json:"d"`
	Rows    int   `json:"rows"`
	Cols    int   `json:"cols"`
	Widths  []int `json:"widths,omitempty"` // per-layer wire counts, K >= 3
	Devices int   `json:"devices"`
	// Verified reports the composed check: FormalVerify's symbolic
	// sneak-path closure plus the word-parallel simulation tier.
	Verified bool    `json:"verified"`
	SolveMS  float64 `json:"solve_ms"` // labeling solve wall clock
	WallMS   float64 `json:"wall_ms"`  // full synthesis wall clock
	Err      string  `json:"error,omitempty"`
}

type report struct {
	Method  string  `json:"method"`
	Entries []entry `json:"entries"`
}

func main() {
	var (
		method    = flag.String("method", "heuristic", "labeling method: auto, oct, mip, heuristic, portfolio")
		timeLimit = flag.Duration("timelimit", 15*time.Second, "per-synthesis solve budget")
		outPath   = flag.String("out", "results/BENCH_3d.json", "output JSON path")
		baseline  = flag.String("compare", "", "baseline JSON file to diff against (warn-only)")
	)
	flag.Parse()
	circuits := flag.Args()
	if len(circuits) == 0 {
		circuits = []string{"ctrl", "cavlc", "int2float"}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, circuits, *method, *timeLimit, *outPath, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "flow3dbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, circuits []string, method string, timeLimit time.Duration, outPath, baseline string) error {
	m, err := core.MethodFromString(method)
	if err != nil {
		return err
	}
	rep := report{Method: method}
	for _, name := range circuits {
		g, ok := bench.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		nw := g.Build()
		for _, k := range layerSweep {
			e := entry{Circuit: name, K: k}
			t0 := time.Now()
			res, err := core.SynthesizeContext(ctx, nw, core.Options{
				Method: m, TimeLimit: timeLimit, Layers: k,
			})
			e.WallMS = millis(time.Since(t0))
			if err != nil {
				e.Err = err.Error()
				rep.Entries = append(rep.Entries, e)
				continue
			}
			if res.Design3D != nil {
				st := res.Design3D.Stats()
				e.S, e.D, e.Rows, e.Cols = st.S, st.D, st.R, st.C
				e.Widths = st.Widths
				e.Devices = st.LitCells + st.OnCells
				e.SolveMS = millis(res.KLabeling.Elapsed)
			} else {
				st := res.Stats()
				e.S, e.D, e.Rows, e.Cols = st.S, st.D, st.Rows, st.Cols
				e.Devices = st.LitCells + st.OnCells
				e.SolveMS = millis(res.Labeling.Elapsed)
			}
			if err := res.FormalVerify(0); err != nil {
				e.Err = fmt.Sprintf("formal verify: %v", err)
			} else if err := res.Verify(14, 512, 1); err != nil {
				e.Err = fmt.Sprintf("verify: %v", err)
			} else {
				e.Verified = true
			}
			fmt.Printf("%-10s K=%d  S=%-4d D=%-3d footprint %dx%d  devices=%-4d verified=%-5v solve=%.0fms wall=%.0fms\n",
				name, k, e.S, e.D, e.Rows, e.Cols, e.Devices, e.Verified, e.SolveMS, e.WallMS)
			rep.Entries = append(rep.Entries, e)
		}
	}
	if baseline != "" {
		compare(os.Stderr, rep, baseline)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

// compare warns (on w) about fresh results that regress against the
// committed baseline: a larger semiperimeter or a lost verification at the
// same (circuit, K) point. Wall clock is reported nowhere — it is noise on
// shared runners. Warn-only by design; the caller's exit status is
// unaffected.
func compare(w io.Writer, fresh report, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		_, _ = fmt.Fprintf(w, "flow3dbench: compare: %v (skipping comparison)\n", err)
		return
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		_, _ = fmt.Fprintf(w, "flow3dbench: compare: parsing %s: %v (skipping comparison)\n", path, err)
		return
	}
	type point struct {
		s        int
		verified bool
		err      string
	}
	byKey := make(map[string]point, len(base.Entries))
	for _, e := range base.Entries {
		byKey[fmt.Sprintf("%s/K=%d", e.Circuit, e.K)] = point{s: e.S, verified: e.Verified, err: e.Err}
	}
	for _, e := range fresh.Entries {
		key := fmt.Sprintf("%s/K=%d", e.Circuit, e.K)
		b, ok := byKey[key]
		if !ok {
			continue
		}
		if e.Err != "" && b.err == "" {
			_, _ = fmt.Fprintf(w, "flow3dbench: compare: %s now fails: %s\n", key, e.Err)
			continue
		}
		if e.S > b.s && b.err == "" {
			_, _ = fmt.Fprintf(w, "flow3dbench: compare: %s semiperimeter %d > baseline %d\n", key, e.S, b.s)
		}
		if !e.Verified && b.verified {
			_, _ = fmt.Fprintf(w, "flow3dbench: compare: %s lost verification\n", key)
		}
	}
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

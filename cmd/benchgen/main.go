// Command benchgen emits the repository's benchmark circuits (Table I of
// the paper: nine ISCAS85-flavoured and eight EPFL-control-flavoured
// circuits) as BLIF files.
//
// Usage:
//
//	benchgen [-dir benchmarks] [-list] [name ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"compact/internal/bench"
	"compact/internal/blif"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, g := range bench.All() {
			fmt.Printf("%-10s %-8s %4d in %4d out  %s\n", g.Name, g.Suite, g.Inputs, g.Outputs, g.Description)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		for _, g := range bench.All() {
			names = append(names, g.Name)
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, name := range names {
		g, ok := bench.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q\n", name)
			os.Exit(1)
		}
		nw := g.Build()
		path := filepath.Join(*dir, name+".blif")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := blif.Write(f, nw); err != nil {
			_ = f.Close() // the Write error is the one worth reporting
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", path, nw)
	}
}

// Command compactlint runs the repository's project-specific static
// analyzers (package internal/lint) over the module. It is pure standard
// library — go/parser, go/ast, go/types, go/importer — so the repo's
// zero-external-dependency constraint holds for the tooling too.
//
// Usage:
//
//	compactlint [flags] [patterns]
//
// Patterns select which packages' findings are reported ("./..." — the
// default — means all); the whole module is always loaded and type-checked
// so whole-program analyses (panicfree) see every edge. Exit status is 0
// with no findings, 1 with findings, 2 on load/usage errors.
//
// Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it.
//
// For CI consumption, -json writes the findings to stdout as a JSON
// document (redirect it to keep an artifact), -github additionally emits
// GitHub Actions ::error annotations (to stderr when combined with
// -json, so the JSON stays clean), and -budget fails the run with exit
// status 3 if the whole suite takes longer than the given duration — the
// analyzers are meant to stay fast enough to sit in every CI run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"compact/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list   = flag.Bool("list", false, "list the configured analyzers and exit")
		only   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		asJSON = flag.Bool("json", false, "write findings to stdout as JSON")
		github = flag.Bool("github", false, "emit GitHub Actions ::error annotations")
		budget = flag.Duration("budget", 0, "fail (exit 3) if the suite exceeds this wall-clock budget")
	)
	flag.Parse()
	start := time.Now()

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	analyzers := lint.DefaultAnalyzers(modPath)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "compactlint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = filtered
	}

	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	diags := lint.RunAnalyzers(prog, analyzers)

	prefixes, err := patternPrefixes(flag.Args(), root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	found := []jsonFinding{} // non-nil so -json always emits an array
	for _, d := range diags {
		if !matchesAny(d.Pos.Filename, prefixes) {
			continue
		}
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		found = append(found, jsonFinding{
			File:     filepath.ToSlash(name),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	elapsed := time.Since(start)

	// Annotations go to stderr when stdout is the JSON artifact.
	annotations := os.Stdout
	if *asJSON {
		annotations = os.Stderr
	}
	for _, f := range found {
		if *github {
			// ::error file=...,line=...,col=...::message — GitHub renders
			// these as inline PR annotations.
			_, _ = fmt.Fprintf(annotations, "::error file=%s,line=%d,col=%d,title=compactlint %s::%s\n",
				f.File, f.Line, f.Column, f.Analyzer, escapeAnnotation(f.Message))
		} else if !*asJSON {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if *asJSON {
		report := jsonReport{Findings: found, ElapsedMS: elapsed.Milliseconds()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "compactlint:", err)
			return 2
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "compactlint: suite took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		return 3
	}
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "compactlint: %d finding(s)\n", len(found))
		return 1
	}
	return 0
}

// jsonFinding is one diagnostic in the -json artifact.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: the findings plus the suite's
// wall-clock time, so CI can trend the budget.
type jsonReport struct {
	Findings  []jsonFinding `json:"findings"`
	ElapsedMS int64         `json:"elapsed_ms"`
}

// escapeAnnotation applies GitHub's workflow-command escaping to message
// data (%, CR and LF).
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// patternPrefixes converts package patterns (./..., ./internal/...,
// ./internal/ilp) into directory prefixes findings must live under. An
// empty pattern list, "./..." or "all" selects everything.
func patternPrefixes(patterns []string, root, modPath string) ([]string, error) {
	var out []string
	for _, p := range patterns {
		if p == "./..." || p == "all" || p == modPath+"/..." {
			return nil, nil // everything
		}
		p = strings.TrimSuffix(p, "/...")
		p = strings.TrimPrefix(p, modPath+"/")
		p = strings.TrimPrefix(p, "./")
		dir := filepath.Join(root, filepath.FromSlash(p))
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("pattern %q: %w", p, err)
		}
		out = append(out, dir)
	}
	return out, nil
}

func matchesAny(filename string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(filename, p+string(filepath.Separator)) || filepath.Dir(filename) == p {
			return true
		}
	}
	return false
}

// Command compactlint runs the repository's project-specific static
// analyzers (package internal/lint) over the module. It is pure standard
// library — go/parser, go/ast, go/types, go/importer — so the repo's
// zero-external-dependency constraint holds for the tooling too.
//
// Usage:
//
//	compactlint [flags] [patterns]
//
// Patterns select which packages' findings are reported ("./..." — the
// default — means all); the whole module is always loaded and type-checked
// so whole-program analyses (panicfree) see every edge. Exit status is 0
// with no findings, 1 with findings, 2 on load/usage errors.
//
// Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"compact/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list = flag.Bool("list", false, "list the configured analyzers and exit")
		only = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	analyzers := lint.DefaultAnalyzers(modPath)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "compactlint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = filtered
	}

	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	diags := lint.RunAnalyzers(prog, analyzers)

	prefixes, err := patternPrefixes(flag.Args(), root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compactlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	n := 0
	for _, d := range diags {
		if !matchesAny(d.Pos.Filename, prefixes) {
			continue
		}
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "compactlint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// patternPrefixes converts package patterns (./..., ./internal/...,
// ./internal/ilp) into directory prefixes findings must live under. An
// empty pattern list, "./..." or "all" selects everything.
func patternPrefixes(patterns []string, root, modPath string) ([]string, error) {
	var out []string
	for _, p := range patterns {
		if p == "./..." || p == "all" || p == modPath+"/..." {
			return nil, nil // everything
		}
		p = strings.TrimSuffix(p, "/...")
		p = strings.TrimPrefix(p, modPath+"/")
		p = strings.TrimPrefix(p, "./")
		dir := filepath.Join(root, filepath.FromSlash(p))
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("pattern %q: %w", p, err)
		}
		out = append(out, dir)
	}
	return out, nil
}

func matchesAny(filename string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(filename, p+string(filepath.Separator)) || filepath.Dir(filename) == p {
			return true
		}
	}
	return false
}

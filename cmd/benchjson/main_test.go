package main

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: compact/internal/labeling
cpu: Intel(R) Xeon(R)
BenchmarkSolveHeuristic 	     100	     46766 ns/op	    8208 B/op	     104 allocs/op
BenchmarkSolveMIP       	       1	 357637733 ns/op	22926592 B/op	   10892 allocs/op
PASS
ok  	compact/internal/labeling	0.717s
pkg: compact/internal/ilp
BenchmarkSimplexDense            	      50	   1792246 ns/op	  114080 B/op	     116 allocs/op
PASS
`

func TestParse(t *testing.T) {
	rs, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rs), rs)
	}
	first := rs[0]
	if first.Pkg != "compact/internal/labeling" || first.Name != "BenchmarkSolveHeuristic" {
		t.Errorf("first result misattributed: %+v", first)
	}
	if first.Runs != 100 || first.NsPerOp != 46766 || first.BytesPerOp != 8208 || first.AllocsPerOp != 104 {
		t.Errorf("first result metrics wrong: %+v", first)
	}
	if rs[2].Pkg != "compact/internal/ilp" {
		t.Errorf("pkg header not tracked across sections: %+v", rs[2])
	}
}

func TestCompareWarnOnly(t *testing.T) {
	base := `[
	  {"pkg": "p", "name": "BenchmarkFast", "runs": 10, "ns_per_op": 100},
	  {"pkg": "p", "name": "BenchmarkSlow", "runs": 10, "ns_per_op": 100}
	]`
	dir := t.TempDir()
	path := dir + "/base.json"
	if err := writeFile(path, base); err != nil {
		t.Fatal(err)
	}
	fresh := []result{
		{Pkg: "p", Name: "BenchmarkFast", Runs: 10, NsPerOp: 110}, // within 1.25x
		{Pkg: "p", Name: "BenchmarkSlow", Runs: 10, NsPerOp: 200}, // 2x: warn
		{Pkg: "p", Name: "BenchmarkNew", Runs: 10, NsPerOp: 50},   // not in baseline
	}
	var buf strings.Builder
	compare(&buf, fresh, path, 1.25)
	out := buf.String()
	if !strings.Contains(out, "WARNING BenchmarkSlow slowed 2.00x") {
		t.Errorf("missing slowdown warning in:\n%s", out)
	}
	if strings.Contains(out, "WARNING BenchmarkFast") {
		t.Errorf("false positive for in-threshold benchmark:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew not in baseline") {
		t.Errorf("missing new-benchmark note in:\n%s", out)
	}

	// Missing baseline: a note, never a failure.
	buf.Reset()
	compare(&buf, fresh, dir+"/nope.json", 1.25)
	if !strings.Contains(buf.String(), "skipping comparison") {
		t.Errorf("missing-baseline path not soft: %s", buf.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseEmpty(t *testing.T) {
	rs, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok x 0.1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("got %d results from non-bench input", len(rs))
	}
}

// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array, one object per benchmark result, for CI
// artifact archiving and cross-run comparison.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > bench.json
//
// Recognized metrics are the standard testing.B columns: ns/op, B/op,
// allocs/op, plus MB/s when present. Lines that are not benchmark results
// (package headers, PASS/ok, warnings) are skipped; the current "pkg:"
// header is attached to each result.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line in JSON form.
type result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]result, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	results := []result{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: Name N value ns/op.
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmarking..." narrative line
		}
		r := result{Pkg: pkg, Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.MBPerS = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

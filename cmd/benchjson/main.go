// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array, one object per benchmark result, for CI
// artifact archiving and cross-run comparison.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > bench.json
//	go test -bench=. ./... | benchjson -compare results/BENCH_ilp.json > bench.json
//
// Recognized metrics are the standard testing.B columns: ns/op, B/op,
// allocs/op, plus MB/s when present. Lines that are not benchmark results
// (package headers, PASS/ok, warnings) are skipped; the current "pkg:"
// header is attached to each result.
//
// With -compare, the fresh results are also diffed against a committed
// baseline JSON file: benchmarks slower than the baseline by more than
// -threshold (default 1.25×) are reported on stderr. The check is
// warn-only — benchjson always exits 0 on a successful parse — because
// shared CI runners make hard wall-clock gates flaky; the warnings are
// for humans reading the job log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line in JSON form.
type result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

func main() {
	baseline := flag.String("compare", "", "baseline JSON file to diff against (warn-only)")
	threshold := flag.Float64("threshold", 1.25, "slowdown ratio above which -compare warns")
	flag.Parse()
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		compare(os.Stderr, results, *baseline, *threshold)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compare warns (on w) about fresh results slower than the baseline by
// more than threshold×. Missing baseline files, unparseable baselines and
// benchmarks absent from either side are reported but never fatal: the
// comparison is a soft regression tripwire, not a gate.
func compare(w io.Writer, fresh []result, path string, threshold float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		_, _ = fmt.Fprintf(w, "benchjson: compare: %v (skipping comparison)\n", err)
		return
	}
	var base []result
	if err := json.Unmarshal(data, &base); err != nil {
		_, _ = fmt.Fprintf(w, "benchjson: compare: parsing %s: %v (skipping comparison)\n", path, err)
		return
	}
	byName := make(map[string]result, len(base))
	for _, b := range base {
		byName[b.Pkg+"/"+b.Name] = b
	}
	warned := 0
	for _, f := range fresh {
		b, ok := byName[f.Pkg+"/"+f.Name]
		if !ok {
			_, _ = fmt.Fprintf(w, "benchjson: compare: %s not in baseline %s (new benchmark?)\n", f.Name, path)
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*threshold {
			_, _ = fmt.Fprintf(w, "benchjson: compare: WARNING %s slowed %.2fx (%.0f -> %.0f ns/op) vs %s\n",
				f.Name, f.NsPerOp/b.NsPerOp, b.NsPerOp, f.NsPerOp, path)
			warned++
		}
	}
	if warned == 0 {
		_, _ = fmt.Fprintf(w, "benchjson: compare: no regressions beyond %.2fx vs %s\n", threshold, path)
	}
}

func parse(sc *bufio.Scanner) ([]result, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	results := []result{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: Name N value ns/op.
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmarking..." narrative line
		}
		r := result{Pkg: pkg, Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.MBPerS = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

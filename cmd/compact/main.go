// Command compact synthesizes a flow-based-computing crossbar design from
// a combinational circuit in BLIF or PLA format, implementing the COMPACT
// framework (DATE 2021).
//
// Usage:
//
//	compact -in circuit.blif [-gamma 0.5] [-method auto|oct|mip|heuristic|portfolio]
//	        [-robdds] [-noalign] [-timelimit 60s] [-render] [-dot out.dot]
//	        [-verify N] [-spice] [-defects map.json] [-defect-rate 0.05]
//	        [-max-rows R] [-max-cols C] [-partition] [-layers K]
//
// -layers K (K >= 3) synthesizes a FLOW-3D K-layer crossbar stack instead
// of the classic two-layer array: the BDD graph is K-colored onto the
// stack (internal/labeling SolveK), mapped through internal/xbar3d and
// verified through the layered sneak-path evaluators. 0, 1 and 2 all mean
// the classic 2D pipeline.
//
// -max-rows / -max-cols cap the crossbar dimensions; with -partition, a
// function that cannot fit one tile is cut into a verified cascade of
// tiles, each within the caps (see internal/partition).
//
// The -defects / -defect-rate flags enable defect-aware placement: the
// design is placed onto a defective crossbar (an explicit stuck-at map, or
// one generated at the given rate from -defect-seed) and the effective
// placed design is re-verified before it is reported.
//
// Interrupting the run (SIGINT/SIGTERM) cancels the synthesis context; the
// anytime solvers unwind with their best labeling so far where possible.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compact/internal/core"
	"compact/internal/defect"
	"compact/internal/parse"
	"compact/internal/spice"
)

// cliConfig carries every flag that tunes run; the zero value plus a gamma
// is a plain defect-free synthesis.
type cliConfig struct {
	gamma      float64
	method     string
	robdds     bool
	noalign    bool
	timeLimit  time.Duration
	sift       bool
	render     bool
	dotPath    string
	svgPath    string
	verifyN    int
	runSpice   bool
	formal     bool
	defectsMap string // path to a defect.Map JSON file
	defectRate float64
	defectOn   float64
	defectSeed uint64
	repairMax  int
	partition  bool
	maxRows    int
	maxCols    int
	layers     int
}

func main() {
	var (
		inPath = flag.String("in", "", "input circuit (.blif, .pla or structural .v)")
		cfg    cliConfig
	)
	flag.Float64Var(&cfg.gamma, "gamma", 0.5, "objective weight: 1 minimizes semiperimeter, 0 max dimension")
	flag.StringVar(&cfg.method, "method", "auto", "labeling method: auto, oct, mip, heuristic, portfolio")
	flag.BoolVar(&cfg.robdds, "robdds", false, "use per-output ROBDDs merged by the 1-terminal instead of a shared SBDD")
	flag.BoolVar(&cfg.noalign, "noalign", false, "drop the input/output alignment constraints (Eq. 7)")
	flag.DurationVar(&cfg.timeLimit, "timelimit", 60*time.Second, "exact-solver time limit")
	flag.BoolVar(&cfg.sift, "sift", false, "improve the BDD variable order by rebuild-based sifting")
	flag.BoolVar(&cfg.render, "render", false, "print the crossbar matrix")
	flag.StringVar(&cfg.dotPath, "dot", "", "write the crossbar's BDD in Graphviz format (unsupported with -robdds)")
	flag.IntVar(&cfg.verifyN, "verify", 1000, "random vectors for functional validation (0 disables; exhaustive when few inputs)")
	flag.BoolVar(&cfg.runSpice, "spice", false, "run the SPICE-lite electrical margin analysis")
	flag.StringVar(&cfg.svgPath, "svg", "", "write the crossbar design as an SVG image")
	flag.BoolVar(&cfg.formal, "formal", false, "prove design/network equivalence for ALL inputs (symbolic sneak-path closure)")
	flag.StringVar(&cfg.defectsMap, "defects", "", "defect map JSON file; place the design onto this defective crossbar")
	flag.Float64Var(&cfg.defectRate, "defect-rate", 0, "generate a seeded defect map with this stuck-at cell fraction [0,1)")
	flag.Float64Var(&cfg.defectOn, "defect-on", 0, "stuck-ON share of generated defects (default 0.5)")
	flag.Uint64Var(&cfg.defectSeed, "defect-seed", 0, "seed for defect generation and placement search")
	flag.IntVar(&cfg.repairMax, "repair", 0, "max place-verify-retry attempts (default 3)")
	flag.IntVar(&cfg.maxRows, "max-rows", 0, "per-crossbar row cap (0 = unconstrained)")
	flag.IntVar(&cfg.maxCols, "max-cols", 0, "per-crossbar column cap (0 = unconstrained)")
	flag.BoolVar(&cfg.partition, "partition", false, "when the function cannot fit -max-rows x -max-cols, cut it into a verified multi-tile cascade")
	flag.IntVar(&cfg.layers, "layers", 0, "crossbar wire layers: 0/1/2 = classic 2D, 3+ = FLOW-3D layered stack")
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *inPath, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "compact:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, inPath string, cfg cliConfig) error {
	nw, err := parse.ParseFile(inPath)
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %s\n", nw)

	m, err := core.MethodFromString(cfg.method)
	if err != nil {
		return err
	}
	opts := core.Options{
		Gamma: cfg.gamma, GammaSet: true,
		Method:            m,
		NoAlign:           cfg.noalign,
		TimeLimit:         cfg.timeLimit,
		Sift:              cfg.sift,
		DefectRate:        cfg.defectRate,
		DefectOnFraction:  cfg.defectOn,
		DefectSeed:        cfg.defectSeed,
		MaxRepairAttempts: cfg.repairMax,
		MaxRows:           cfg.maxRows,
		MaxCols:           cfg.maxCols,
		Partition:         cfg.partition,
		Layers:            cfg.layers,
	}
	if cfg.robdds {
		opts.BDDKind = core.SeparateROBDDs
	}
	if cfg.defectsMap != "" {
		data, err := os.ReadFile(cfg.defectsMap)
		if err != nil {
			return err
		}
		dm := new(defect.Map)
		if err := json.Unmarshal(data, dm); err != nil {
			return fmt.Errorf("reading defect map %s: %w", cfg.defectsMap, err)
		}
		opts.Defects = dm
	}
	res, err := core.SynthesizeContext(ctx, nw, opts)
	if err != nil {
		return err
	}
	if res.Plan != nil {
		ps := res.Plan.Stats()
		fmt.Printf("partition: %d tiles under %dx%d caps  cut_nets=%d  total_S=%d  devices=%d  cascade_depth=%d\n",
			ps.Tiles, cfg.maxRows, cfg.maxCols, ps.CutNets, ps.TotalS, ps.Devices, ps.Depth)
		for _, tl := range res.Plan.Tiles {
			ts := tl.Design.Stats()
			line := fmt.Sprintf("  tile %-6s %2d x %-2d  S=%-3d devices=%-3d in=%d out=%d",
				tl.Name, ts.Rows, ts.Cols, ts.S, ts.LitCells+ts.OnCells, len(tl.Inputs), len(tl.Outputs))
			if tl.Placement != nil {
				line += fmt.Sprintf("  placed=%s repair_attempts=%d", tl.Placement.Engine, tl.RepairAttempts)
			}
			fmt.Println(line)
		}
		fmt.Printf("plan digest: %s\n", res.Plan.Digest())
	} else if res.Design3D != nil {
		st := res.Design3D.Stats()
		fmt.Printf("bdd: %d nodes, %d edges (%s)\n", res.BDDNodes, res.BDDEdges, opts.BDDKind)
		fmt.Printf("labeling: method=%s optimal=%v (K=%d coloring)\n",
			res.KLabeling.Method, res.KLabeling.Optimal, st.K)
		fmt.Printf("stack: %d wire layers, widths %v  footprint %d x %d  S=%d  D=%d  devices=%d  delay=%d steps\n",
			st.K, st.Widths, st.R, st.C, st.S, st.D, st.LitCells+st.OnCells, st.Delay)
		if res.Placement3D != nil {
			defects := 0
			for _, dm := range res.DefectMaps3D {
				defects += dm.Len()
			}
			fmt.Printf("placement: engine=%s planes=%d defects=%d repair_attempts=%d (effective design re-verified)\n",
				res.Placement3D.Engine, len(res.DefectMaps3D), defects, res.RepairAttempts)
		}
	} else {
		st := res.Stats()
		fmt.Printf("bdd: %d nodes, %d edges (%s)\n", res.BDDNodes, res.BDDEdges, opts.BDDKind)
		fmt.Printf("labeling: method=%s optimal=%v\n", res.Labeling.Method, res.Labeling.Optimal)
		for _, er := range res.Labeling.Engines {
			mark := " "
			if er.Winner {
				mark = "*"
			}
			detail := fmt.Sprintf("objective=%.2f optimal=%v", er.Objective, er.Optimal)
			if er.Err != "" {
				detail = "error: " + er.Err
			}
			fmt.Printf("  %s engine %-9s %-32s elapsed=%v\n", mark, er.Method, detail, er.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("crossbar: %d x %d  S=%d  D=%d  area=%d  devices=%d  delay=%d steps\n",
			st.Rows, st.Cols, st.S, st.D, st.Area, st.LitCells+st.OnCells, st.Delay)
		if res.Placement != nil {
			fmt.Printf("placement: engine=%s array=%dx%d defects=%d repair_attempts=%d (effective design re-verified)\n",
				res.Placement.Engine, res.Defects.Rows(), res.Defects.Cols(), res.Defects.Len(), res.RepairAttempts)
		}
	}
	fmt.Printf("synthesis time: %v\n", res.SynthTime.Round(time.Millisecond))

	if cfg.formal {
		if cfg.robdds && res.Plan == nil {
			return fmt.Errorf("-formal requires the SBDD mode (design variables must follow network input order)")
		}
		if err := res.FormalVerify(0); err != nil {
			return fmt.Errorf("formal verification FAILED: %w", err)
		}
		fmt.Printf("formal verification: PROVEN over all 2^%d assignments\n", nw.NumInputs())
	}
	if cfg.verifyN > 0 {
		if err := res.Verify(14, cfg.verifyN, 1); err != nil {
			return fmt.Errorf("validation FAILED: %w", err)
		}
		fmt.Printf("validation: OK (%d inputs, sampled/exhaustive)\n", nw.NumInputs())
	}
	if res.Design3D != nil && (cfg.render || cfg.svgPath != "") {
		return fmt.Errorf("-render and -svg draw single 2D arrays; not supported for -layers stacks (use the JSON wire format)")
	}
	if cfg.render {
		if res.Plan != nil {
			for _, tl := range res.Plan.Tiles {
				fmt.Printf("\ntile %s (inputs %v -> nets %v):\n", tl.Name, tl.Inputs, tl.Outputs)
				if err := tl.Design.Render(os.Stdout); err != nil {
					return err
				}
			}
		} else {
			fmt.Println()
			if err := res.Design.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	if res.Plan != nil && (cfg.dotPath != "" || cfg.svgPath != "" || cfg.runSpice) {
		return fmt.Errorf("-dot, -svg and -spice are single-crossbar reports; not supported for partitioned plans")
	}
	if cfg.dotPath != "" {
		f, err := os.Create(cfg.dotPath)
		if err != nil {
			return err
		}
		if err := res.WriteBDDDOT(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("dot: wrote %s\n", cfg.dotPath)
	}
	if cfg.svgPath != "" {
		f, err := os.Create(cfg.svgPath)
		if err != nil {
			return err
		}
		if err := res.Design.WriteSVG(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("svg: wrote %s\n", cfg.svgPath)
	}
	if cfg.runSpice {
		model := spice.Default()
		var (
			rep spice.MarginReport
			err error
		)
		if res.Design3D != nil {
			// The 3D nodal path simulates the pristine stack (layered defect
			// placement has no electrical model).
			rep, err = spice.Margin3DContext(ctx, res.Design3D, nw.Eval, nw.NumInputs(), 10, 200, model, 1)
		} else {
			rep, err = spice.Margin(res.Design, nw.Eval, nw.NumInputs(), 10, 200, model, 1)
		}
		if err != nil {
			return err
		}
		fmt.Printf("spice-lite: minOn=%.4gV maxOff=%.4gV separable=%v (%d vectors)\n",
			rep.MinOn, rep.MaxOff, rep.Separable, rep.Checked)
	}
	return nil
}

// Command compact synthesizes a flow-based-computing crossbar design from
// a combinational circuit in BLIF or PLA format, implementing the COMPACT
// framework (DATE 2021).
//
// Usage:
//
//	compact -in circuit.blif [-gamma 0.5] [-method auto|oct|mip|heuristic|portfolio]
//	        [-robdds] [-noalign] [-timelimit 60s] [-render] [-dot out.dot]
//	        [-verify N] [-spice]
//
// Interrupting the run (SIGINT/SIGTERM) cancels the synthesis context; the
// anytime solvers unwind with their best labeling so far where possible.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compact/internal/core"
	"compact/internal/parse"
	"compact/internal/spice"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input circuit (.blif, .pla or structural .v)")
		gamma     = flag.Float64("gamma", 0.5, "objective weight: 1 minimizes semiperimeter, 0 max dimension")
		method    = flag.String("method", "auto", "labeling method: auto, oct, mip, heuristic, portfolio")
		robdds    = flag.Bool("robdds", false, "use per-output ROBDDs merged by the 1-terminal instead of a shared SBDD")
		noalign   = flag.Bool("noalign", false, "drop the input/output alignment constraints (Eq. 7)")
		timeLimit = flag.Duration("timelimit", 60*time.Second, "exact-solver time limit")
		sift      = flag.Bool("sift", false, "improve the BDD variable order by rebuild-based sifting")
		render    = flag.Bool("render", false, "print the crossbar matrix")
		dotPath   = flag.String("dot", "", "write the crossbar's BDD in Graphviz format (unsupported with -robdds)")
		verifyN   = flag.Int("verify", 1000, "random vectors for functional validation (0 disables; exhaustive when few inputs)")
		runSpice  = flag.Bool("spice", false, "run the SPICE-lite electrical margin analysis")
		svgPath   = flag.String("svg", "", "write the crossbar design as an SVG image")
		formal    = flag.Bool("formal", false, "prove design/network equivalence for ALL inputs (symbolic sneak-path closure)")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *inPath, *gamma, *method, *robdds, *noalign, *timeLimit, *sift, *render, *dotPath, *svgPath, *verifyN, *runSpice, *formal); err != nil {
		fmt.Fprintln(os.Stderr, "compact:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, inPath string, gamma float64, method string, robdds, noalign bool,
	timeLimit time.Duration, sift, render bool, dotPath, svgPath string, verifyN int, runSpice, formal bool) error {

	nw, err := parse.ParseFile(inPath)
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %s\n", nw)

	m, err := core.MethodFromString(method)
	if err != nil {
		return err
	}
	opts := core.Options{
		Gamma: gamma, GammaSet: true,
		Method:    m,
		NoAlign:   noalign,
		TimeLimit: timeLimit,
		Sift:      sift,
	}
	if robdds {
		opts.BDDKind = core.SeparateROBDDs
	}
	res, err := core.SynthesizeContext(ctx, nw, opts)
	if err != nil {
		return err
	}
	st := res.Stats()
	fmt.Printf("bdd: %d nodes, %d edges (%s)\n", res.BDDNodes, res.BDDEdges, opts.BDDKind)
	fmt.Printf("labeling: method=%s optimal=%v\n", res.Labeling.Method, res.Labeling.Optimal)
	for _, er := range res.Labeling.Engines {
		mark := " "
		if er.Winner {
			mark = "*"
		}
		detail := fmt.Sprintf("objective=%.2f optimal=%v", er.Objective, er.Optimal)
		if er.Err != "" {
			detail = "error: " + er.Err
		}
		fmt.Printf("  %s engine %-9s %-32s elapsed=%v\n", mark, er.Method, detail, er.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("crossbar: %d x %d  S=%d  D=%d  area=%d  devices=%d  delay=%d steps\n",
		st.Rows, st.Cols, st.S, st.D, st.Area, st.LitCells+st.OnCells, st.Delay)
	fmt.Printf("synthesis time: %v\n", res.SynthTime.Round(time.Millisecond))

	if formal {
		if robdds {
			return fmt.Errorf("-formal requires the SBDD mode (design variables must follow network input order)")
		}
		if err := res.FormalVerify(0); err != nil {
			return fmt.Errorf("formal verification FAILED: %w", err)
		}
		fmt.Printf("formal verification: PROVEN over all 2^%d assignments\n", nw.NumInputs())
	}
	if verifyN > 0 {
		if err := res.Verify(14, verifyN, 1); err != nil {
			return fmt.Errorf("validation FAILED: %w", err)
		}
		fmt.Printf("validation: OK (%d inputs, sampled/exhaustive)\n", nw.NumInputs())
	}
	if render {
		fmt.Println()
		if err := res.Design.Render(os.Stdout); err != nil {
			return err
		}
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := res.WriteBDDDOT(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("dot: wrote %s\n", dotPath)
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := res.Design.WriteSVG(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("svg: wrote %s\n", svgPath)
	}
	if runSpice {
		model := spice.Default()
		rep, err := spice.Margin(res.Design, nw.Eval, nw.NumInputs(), 10, 200, model, 1)
		if err != nil {
			return err
		}
		fmt.Printf("spice-lite: minOn=%.4gV maxOff=%.4gV separable=%v (%d vectors)\n",
			rep.MinOn, rep.MaxOff, rep.Separable, rep.Checked)
	}
	return nil
}

package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"compact/internal/xbar"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBLIF(t *testing.T) {
	path := writeTemp(t, "fig2.blif", `
.model fig2
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
`)
	dot := filepath.Join(t.TempDir(), "out.dot")
	svg := filepath.Join(t.TempDir(), "out.svg")
	cfg := cliConfig{
		gamma: 0.5, method: "mip", timeLimit: 10 * time.Second,
		render: true, dotPath: dot, svgPath: svg,
		verifyN: 100, runSpice: true, formal: true,
	}
	if err := run(context.Background(), path, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot output missing digraph:\n%s", data)
	}
}

func TestRunPLA(t *testing.T) {
	path := writeTemp(t, "and.pla", ".i 2\n.o 1\n11 1\n.e\n")
	cfg := cliConfig{gamma: 1, method: "portfolio", timeLimit: 10 * time.Second, verifyN: 10}
	if err := run(context.Background(), path, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilog(t *testing.T) {
	path := writeTemp(t, "m.v", `
module m (a, b, f);
  input a, b; output f;
  assign f = a ^ b;
endmodule
`)
	cfg := cliConfig{gamma: 0.5, method: "heuristic", robdds: true, timeLimit: 10 * time.Second, verifyN: 10}
	if err := run(context.Background(), path, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefectFlags(t *testing.T) {
	blif := writeTemp(t, "m.blif", `
.model m
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
`)
	// Generated defect map: defect-aware placement with formal re-check.
	cfg := cliConfig{
		gamma: 0.5, method: "heuristic", timeLimit: 10 * time.Second,
		verifyN: 10, defectRate: 0.02, defectSeed: 42,
	}
	if err := run(context.Background(), blif, cfg); err != nil {
		var up *xbar.Unplaceable
		if !errors.As(err, &up) {
			t.Fatalf("defect-rate run failed untypedly: %v", err)
		}
	}

	// Explicit defect map file, too small for the design: the typed
	// unplaceable verdict must surface as the CLI error.
	tiny := writeTemp(t, "tiny.json", `{"v":1,"rows":1,"cols":1,"cells":[]}`)
	cfg = cliConfig{gamma: 0.5, method: "heuristic", timeLimit: 10 * time.Second, defectsMap: tiny}
	err := run(context.Background(), blif, cfg)
	var up *xbar.Unplaceable
	if err == nil || !errors.As(err, &up) {
		t.Fatalf("tiny defect map: want *xbar.Unplaceable, got %v", err)
	}

	// Malformed defect map files are rejected with a parse error.
	bad := writeTemp(t, "bad.json", `{"v":99}`)
	cfg = cliConfig{gamma: 0.5, method: "heuristic", timeLimit: 10 * time.Second, defectsMap: bad}
	if err := run(context.Background(), blif, cfg); err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("bad defect map accepted: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	base := cliConfig{gamma: 0.5, method: "auto", timeLimit: time.Second}
	if err := run(context.Background(), "/does/not/exist.blif", base); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "x.txt", "hello")
	if err := run(context.Background(), bad, base); err == nil {
		t.Error("unknown extension accepted")
	}
	blif := writeTemp(t, "m.blif", ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
	cfg := base
	cfg.method = "bogus"
	if err := run(context.Background(), blif, cfg); err == nil {
		t.Error("unknown method accepted")
	}
	cfg = base
	cfg.method = "mip"
	cfg.robdds = true
	cfg.dotPath = filepath.Join(t.TempDir(), "x.dot")
	if err := run(context.Background(), blif, cfg); err == nil {
		t.Error("-dot with -robdds accepted")
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBLIF(t *testing.T) {
	path := writeTemp(t, "fig2.blif", `
.model fig2
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
`)
	dot := filepath.Join(t.TempDir(), "out.dot")
	svg := filepath.Join(t.TempDir(), "out.svg")
	if err := run(context.Background(), path, 0.5, "mip", false, false, 10*time.Second, false, true, dot, svg, 100, true, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot output missing digraph:\n%s", data)
	}
}

func TestRunPLA(t *testing.T) {
	path := writeTemp(t, "and.pla", ".i 2\n.o 1\n11 1\n.e\n")
	if err := run(context.Background(), path, 1, "portfolio", false, false, 10*time.Second, false, false, "", "", 10, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilog(t *testing.T) {
	path := writeTemp(t, "m.v", `
module m (a, b, f);
  input a, b; output f;
  assign f = a ^ b;
endmodule
`)
	if err := run(context.Background(), path, 0.5, "heuristic", true, false, 10*time.Second, false, false, "", "", 10, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "/does/not/exist.blif", 0.5, "auto", false, false, time.Second, false, false, "", "", 0, false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "x.txt", "hello")
	if err := run(context.Background(), bad, 0.5, "auto", false, false, time.Second, false, false, "", "", 0, false, false); err == nil {
		t.Error("unknown extension accepted")
	}
	blif := writeTemp(t, "m.blif", ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
	if err := run(context.Background(), blif, 0.5, "bogus", false, false, time.Second, false, false, "", "", 0, false, false); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(context.Background(), blif, 0.5, "mip", true, false, time.Second, false, false, "/tmp/x.dot", "", 0, false, false); err == nil {
		t.Error("-dot with -robdds accepted")
	}
}

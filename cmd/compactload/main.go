// Command compactload is the service-level load harness for compactd: it
// drives an open-loop arrival process of synthesis requests — a mixed
// population of hot (repeating) and cold (distinct) content-addressed
// fingerprints, split across the synchronous /v1/synthesize route and
// the async /v1/jobs lifecycle — and reports service percentiles, cache
// effectiveness (including the persistent disk tier) and achieved
// throughput as a versioned JSON document.
//
// Usage:
//
//	compactload [-duration 5s] [-rps 50] [-hot 0.8] [-async 0.2] ...
//	compactload -addr http://host:8650      # load an external compactd
//	compactload -out results/BENCH_service.json -compare results/BENCH_service.json
//
// Without -addr it boots an in-process compactd on a loopback port (with
// -store-dir enabling the disk tier), so CI can smoke the whole service
// stack in one command. Arrival is open-loop: requests launch on the
// arrival clock regardless of how many are outstanding, so a slow server
// shows up as queueing latency rather than a silently reduced rate; a
// bounded in-flight cap sheds (and counts) arrivals past it instead of
// accumulating goroutines without limit.
//
// -compare soft-checks the emitted document against a previous baseline:
// warnings on regressions (latency up, hit ratio down), never a non-zero
// exit — service numbers on shared machines are too noisy for a hard
// gate, matching cmd/benchjson's philosophy.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"compact/internal/server"
)

// loadBLIF is the driven circuit: f = (a AND b) OR c. Tiny on purpose —
// the harness measures the service layers (HTTP, cache tiers, flights,
// job table), not solver throughput; distinct fingerprints come from
// distinct option sets over the same netlist.
const loadBLIF = `.model load
.inputs a b c
.outputs f
.names a b w
11 1
.names w c f
1- 1
-1 1
.end
`

func main() {
	os.Exit(run(os.Args[1:]))
}

// result is the emitted BENCH_service.json document (v1).
type result struct {
	V      int `json:"v"`
	Config struct {
		DurationMS int64   `json:"duration_ms"`
		RPS        float64 `json:"rps"`
		Hot        float64 `json:"hot"`
		HotKeys    int     `json:"hot_keys"`
		ColdKeys   int     `json:"cold_keys"`
		Async      float64 `json:"async"`
		Seed       int64   `json:"seed"`
	} `json:"config"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	RPS       float64 `json:"rps"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Cache struct {
		Hit      int64   `json:"hit"`
		Disk     int64   `json:"disk"`
		Miss     int64   `json:"miss"`
		Shared   int64   `json:"shared"`
		HitRatio float64 `json:"hit_ratio"` // (hit + disk) / all dispositions
	} `json:"cache"`
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
	} `json:"jobs"`
}

// sample is one completed request's measurement.
type sample struct {
	latency     time.Duration
	disposition string
	err         bool
	job         bool
	jobDone     bool
}

func run(args []string) int {
	fs := flag.NewFlagSet("compactload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target compactd base URL (empty = boot one in-process)")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	rps := fs.Float64("rps", 50, "open-loop arrival rate, requests/second")
	hot := fs.Float64("hot", 0.8, "fraction of arrivals drawn from the hot key set")
	hotKeys := fs.Int("hot-keys", 4, "distinct hot fingerprints")
	coldKeys := fs.Int("cold-keys", 64, "distinct cold fingerprints")
	async := fs.Float64("async", 0.2, "fraction of arrivals submitted as /v1/jobs")
	seed := fs.Int64("seed", 1, "traffic RNG seed")
	storeDir := fs.String("store-dir", "", "in-process server store directory (empty = memory-only)")
	out := fs.String("out", "", "write the JSON document here (default stdout)")
	compare := fs.String("compare", "", "baseline BENCH_service.json to soft-compare against (warn-only)")
	maxInflight := fs.Int("max-inflight", 512, "bound on outstanding requests; arrivals past it are shed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rps <= 0 || *duration <= 0 || *hotKeys <= 0 || *coldKeys <= 0 {
		log.Print("compactload: -rps, -duration, -hot-keys and -cold-keys must be positive")
		return 2
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := *addr
	if base == "" {
		stop, url, err := bootServer(ctx, *storeDir)
		if err != nil {
			log.Printf("compactload: %v", err)
			return 1
		}
		defer stop()
		base = url
	}
	base = strings.TrimRight(base, "/")

	doc, err := drive(ctx, base, driveConfig{
		duration:    *duration,
		rps:         *rps,
		hot:         *hot,
		hotKeys:     *hotKeys,
		coldKeys:    *coldKeys,
		async:       *async,
		seed:        *seed,
		maxInflight: *maxInflight,
	})
	if err != nil {
		log.Printf("compactload: %v", err)
		return 1
	}

	if *compare != "" {
		compareBaseline(*compare, doc)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Printf("compactload: encoding: %v", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Printf("compactload: %v", err)
			return 1
		}
		log.Printf("compactload: wrote %s", *out)
	}
	return 0
}

// bootServer starts an in-process compactd on a loopback port, returning
// a shutdown func and the base URL.
func bootServer(ctx context.Context, storeDir string) (func(), string, error) {
	srv, err := server.New(ctx, server.Config{StoreDir: storeDir})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = httpSrv.Serve(ln)
	}()
	stop := func() {
		_ = httpSrv.Close()
		<-served
	}
	return stop, "http://" + ln.Addr().String(), nil
}

type driveConfig struct {
	duration    time.Duration
	rps         float64
	hot         float64
	hotKeys     int
	coldKeys    int
	async       float64
	seed        int64
	maxInflight int
}

// drive runs the open-loop load and aggregates the document.
func drive(ctx context.Context, base string, cfg driveConfig) (*result, error) {
	client := &http.Client{Timeout: 60 * time.Second}

	// Warm-up probe: fail fast on an unreachable target rather than
	// emitting a document full of connection errors.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("target unreachable: %w", err)
	}
	_ = resp.Body.Close()

	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Duration(float64(time.Second) / cfg.rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.duration)
	defer deadline.Stop()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
		shed    int64
	)
	slots := make(chan struct{}, cfg.maxInflight)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	t0 := time.Now()
arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-deadline.C:
			break arrivals
		case <-ticker.C:
		}
		// Pre-draw the traffic decision on the arrival goroutine so the
		// run is a deterministic function of the seed.
		body := requestBody(pickGamma(rng, cfg))
		isJob := rng.Float64() < cfg.async
		select {
		case slots <- struct{}{}:
		default:
			shed++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			if isJob {
				record(runJobRequest(ctx, client, base, body))
			} else {
				record(runSyncRequest(ctx, client, base, body))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	doc := aggregate(samples, elapsed)
	doc.Shed = shed
	doc.Config.DurationMS = cfg.duration.Milliseconds()
	doc.Config.RPS = cfg.rps
	doc.Config.Hot = cfg.hot
	doc.Config.HotKeys = cfg.hotKeys
	doc.Config.ColdKeys = cfg.coldKeys
	doc.Config.Async = cfg.async
	doc.Config.Seed = cfg.seed
	return doc, nil
}

// pickGamma draws a fingerprint: hot keys are a small set every run
// revisits constantly; cold keys a larger population visited rarely.
// Distinct gamma values give distinct content addresses over the same
// netlist, exercising the cache tiers without solver cost dominating.
func pickGamma(rng *rand.Rand, cfg driveConfig) float64 {
	if rng.Float64() < cfg.hot {
		return 0.5 + float64(rng.Intn(cfg.hotKeys))/float64(1<<20)
	}
	return 0.25 + float64(rng.Intn(cfg.coldKeys))/float64(1<<20)
}

func requestBody(gamma float64) string {
	return fmt.Sprintf(`{"circuit": %q, "options": {"method": "heuristic", "gamma": %g, "time_limit_ms": 10000}}`,
		loadBLIF, gamma)
}

// runSyncRequest measures one POST /v1/synthesize round trip.
func runSyncRequest(ctx context.Context, client *http.Client, base, body string) sample {
	t0 := time.Now()
	status, disp, _, err := post(ctx, client, base+"/v1/synthesize", body)
	s := sample{latency: time.Since(t0), disposition: disp}
	if err != nil || status != http.StatusOK {
		s.err = true
	}
	return s
}

// runJobRequest measures one full async lifecycle: submit, poll to a
// terminal state, fetch the result. The latency is end-to-end
// (submission to result body in hand).
func runJobRequest(ctx context.Context, client *http.Client, base, body string) sample {
	t0 := time.Now()
	s := sample{job: true}
	status, _, raw, err := post(ctx, client, base+"/v1/jobs", body)
	if err != nil || status != http.StatusAccepted {
		s.err = true
		s.latency = time.Since(t0)
		return s
	}
	var sub struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil || sub.StatusURL == "" {
		s.err = true
		s.latency = time.Since(t0)
		return s
	}
	for {
		status, _, raw, err = get(ctx, client, base+sub.StatusURL)
		if err != nil || status != http.StatusOK {
			s.err = true
			s.latency = time.Since(t0)
			return s
		}
		var st struct {
			Status    string `json:"status"`
			ResultURL string `json:"result_url"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			s.err = true
			s.latency = time.Since(t0)
			return s
		}
		switch st.Status {
		case "done":
			status, disp, _, err := get(ctx, client, base+st.ResultURL)
			s.latency = time.Since(t0)
			s.disposition = disp
			s.jobDone = err == nil && status == http.StatusOK
			s.err = !s.jobDone
			return s
		case "failed":
			s.latency = time.Since(t0)
			s.err = true
			return s
		}
		select {
		case <-ctx.Done():
			s.latency = time.Since(t0)
			s.err = true
			return s
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func post(ctx context.Context, client *http.Client, url, body string) (int, string, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return do(client, req)
}

func get(ctx context.Context, client *http.Client, url string) (int, string, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", nil, err
	}
	return do(client, req)
}

func do(client *http.Client, req *http.Request) (int, string, []byte, error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Compactd-Cache"), data, nil
}

// aggregate folds the samples into the output document.
func aggregate(samples []sample, elapsed time.Duration) *result {
	doc := &result{V: 1}
	latencies := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		doc.Requests++
		if s.err {
			doc.Errors++
		} else {
			latencies = append(latencies, s.latency)
		}
		switch s.disposition {
		case "hit":
			doc.Cache.Hit++
		case "disk":
			doc.Cache.Disk++
		case "miss":
			doc.Cache.Miss++
		case "shared":
			doc.Cache.Shared++
		}
		if s.job {
			doc.Jobs.Submitted++
			if s.jobDone {
				doc.Jobs.Done++
			} else {
				doc.Jobs.Failed++
			}
		}
	}
	if elapsed > 0 {
		doc.RPS = float64(doc.Requests) / elapsed.Seconds()
	}
	if total := doc.Cache.Hit + doc.Cache.Disk + doc.Cache.Miss + doc.Cache.Shared; total > 0 {
		doc.Cache.HitRatio = float64(doc.Cache.Hit+doc.Cache.Disk) / float64(total)
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if n := len(latencies); n > 0 {
		doc.LatencyMS.P50 = ms(latencies[n*50/100])
		doc.LatencyMS.P90 = ms(latencies[min(n*90/100, n-1)])
		doc.LatencyMS.P99 = ms(latencies[min(n*99/100, n-1)])
		doc.LatencyMS.Max = ms(latencies[n-1])
	}
	return doc
}

// compareBaseline soft-compares doc against a previous run: WARN lines
// on regressions, never a failure (shared-machine service numbers are
// too noisy for a hard gate).
func compareBaseline(path string, doc *result) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("compactload: no baseline %s (%v); skipping compare", path, err)
		return
	}
	var old result
	if err := json.Unmarshal(data, &old); err != nil {
		log.Printf("compactload: baseline %s unreadable (%v); skipping compare", path, err)
		return
	}
	const latencyTolerance = 1.5
	warn := func(format string, args ...any) {
		log.Printf("compactload: WARN: "+format, args...)
	}
	if old.LatencyMS.P50 > 0 && doc.LatencyMS.P50 > old.LatencyMS.P50*latencyTolerance {
		warn("p50 %.2fms vs baseline %.2fms (>%.1fx)", doc.LatencyMS.P50, old.LatencyMS.P50, latencyTolerance)
	}
	if old.LatencyMS.P99 > 0 && doc.LatencyMS.P99 > old.LatencyMS.P99*latencyTolerance {
		warn("p99 %.2fms vs baseline %.2fms (>%.1fx)", doc.LatencyMS.P99, old.LatencyMS.P99, latencyTolerance)
	}
	if doc.Cache.HitRatio < old.Cache.HitRatio-0.1 {
		warn("cache hit ratio %.3f vs baseline %.3f", doc.Cache.HitRatio, old.Cache.HitRatio)
	}
	if doc.Errors > 0 && old.Errors == 0 {
		warn("%d request errors vs clean baseline", doc.Errors)
	}
}

// Command experiments regenerates the tables and figures of the COMPACT
// paper's evaluation (Section VIII) and writes text + CSV renderings.
//
// Usage:
//
//	experiments [-out results] [-timelimit 60s] [-quick] [-v] [exp ...]
//
// where each exp is one of: table1 table2 table3 table4 fig9 fig10 fig11
// fig12 fig13 baselines ablations scaling, or "all" (the default). The last two go
// beyond the paper: a DNF/staircase/COMPACT generation comparison and the
// DESIGN.md §5 ablation sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compact/internal/exp"
)

var experiments = []struct {
	name string
	run  func(exp.Config) (*exp.Table, error)
}{
	{"table1", exp.Table1},
	{"table2", exp.Table2},
	{"table3", exp.Table3},
	{"table4", exp.Table4},
	{"fig9", exp.Fig9},
	{"fig10", exp.Fig10},
	{"fig11", exp.Fig11},
	{"fig12", exp.Fig12},
	{"fig13", exp.Fig13},
	{"baselines", exp.Baselines},
	{"ablations", exp.Ablations},
	{"scaling", exp.Scaling},
}

func main() {
	outDir := flag.String("out", "results", "output directory for .txt/.csv renderings")
	timeLimit := flag.Duration("timelimit", 60*time.Second, "per-solve time limit for exact labeling")
	quick := flag.Bool("quick", false, "shrink benchmark sets and budgets for a fast smoke run")
	verbose := flag.Bool("v", false, "echo progress to stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := exp.Config{
		Ctx:       ctx,
		TimeLimit: *timeLimit,
		OutDir:    *outDir,
		Quick:     *quick,
		Verbose:   *verbose,
	}
	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range experiments {
			want = append(want, e.name)
		}
	}
	for _, name := range want {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(1)
		}
		found := false
		for _, e := range experiments {
			if e.name != name {
				continue
			}
			found = true
			start := time.Now()
			tab, err := e.run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Print(tab.Render())
			fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
}

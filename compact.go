// Package compact is a from-scratch Go implementation of COMPACT
// (Thijssen, Jha, Ewetz — DATE 2021): synthesis of flow-based in-memory
// computing crossbars with minimal semiperimeter and maximum dimension.
//
// A Boolean function, given as a logic network (or parsed from BLIF, PLA
// or structural Verilog),
// is represented as a shared binary decision diagram, viewed as an
// undirected graph, VH-labeled — every BDD node becomes a wordline (H), a
// bitline (V), or both (VH) so that each BDD edge is realizable by a
// memristor — and bound to a crossbar design. The number of VH labels is
// the odd cycle transversal of the graph, making the semiperimeter n + k;
// a weighted MIP objective γ·S + (1−γ)·D trades semiperimeter against
// squareness.
//
// The package exposes the full pipeline:
//
//	nw, _ := compact.Parse(file, compact.FormatAuto)
//	res, _ := compact.Synthesize(nw, compact.Options{Gamma: 0.5})
//	res.Design.Render(os.Stdout)        // the programmed crossbar
//	out := res.Design.Eval(inputVector) // sneak-path evaluation
//
// Subsystems live in internal packages: ROBDD/SBDD manager (internal/bdd),
// graph algorithms incl. odd-cycle transversal (internal/graph,
// internal/oct), a bounded-variable-simplex MIP solver (internal/ilp), the
// VH-labeling solvers (internal/labeling), crossbar mapping and evaluation
// (internal/xbar), an electrical validator (internal/spice), the prior-art
// baselines (internal/staircase, internal/magic), benchmark generators
// (internal/bench) and the experiment harness (internal/exp). This façade
// re-exports the types a downstream user needs.
package compact

import (
	"context"
	"io"

	"compact/internal/bench"
	"compact/internal/blif"
	"compact/internal/core"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/parse"
	"compact/internal/spice"
	"compact/internal/xbar"
)

// Core pipeline types.
type (
	// Options configures Synthesize; the zero value is the paper's
	// default setup (SBDD, γ = 0.5, alignment, auto method).
	Options = core.Options
	// Result carries the design, the labeling solution and statistics.
	Result = core.Result
	// Design is a crossbar: a matrix of memristor assignments plus the
	// input and output wordlines.
	Design = xbar.Design
	// Network is a combinational Boolean network.
	Network = logic.Network
	// Builder incrementally constructs a Network.
	Builder = logic.Builder
	// DeviceModel parameterizes the SPICE-lite electrical validation.
	DeviceModel = spice.DeviceModel
)

// BDD representation kinds (Options.BDDKind).
const (
	SBDD           = core.SBDD
	SeparateROBDDs = core.SeparateROBDDs
)

// VH-labeling methods (Options.Method).
const (
	MethodAuto      = labeling.MethodAuto
	MethodOCT       = labeling.MethodOCT
	MethodMIP       = labeling.MethodMIP
	MethodHeuristic = labeling.MethodHeuristic
	// MethodPortfolio races OCT, MIP and the heuristic concurrently with a
	// shared incumbent, returning the best labeling when the first engine
	// proves optimality or the time budget expires (anytime contract).
	MethodPortfolio = labeling.MethodPortfolio
)

// Synthesize maps a Boolean network to a flow-based crossbar design using
// the COMPACT framework.
func Synthesize(nw *Network, opts Options) (*Result, error) {
	return core.Synthesize(nw, opts)
}

// SynthesizeContext is Synthesize with cooperative cancellation: ctx (and
// the deadline derived from Options.TimeLimit, when set) is honored down to
// individual simplex pivots and branch & bound node expansions. When the
// budget expires mid-solve, the best labeling found so far is returned; a
// context that is already dead on entry returns (nil, ctx.Err()) promptly.
func SynthesizeContext(ctx context.Context, nw *Network, opts Options) (*Result, error) {
	return core.SynthesizeContext(ctx, nw, opts)
}

// NewBuilder starts a new Boolean network.
func NewBuilder(name string) *Builder { return logic.NewBuilder(name) }

// Format identifies a circuit input format accepted by Parse.
type Format = parse.Format

// Input formats. FormatAuto detects the format from content: a module
// keyword or Verilog comment selects Verilog, dot directives distinguish
// BLIF (.model/.inputs/.names/...) from PLA (.i/.o/.p/...), and bare cube
// rows select PLA.
const (
	FormatAuto    = parse.Auto
	FormatBLIF    = parse.BLIF
	FormatPLA     = parse.PLA
	FormatVerilog = parse.Verilog
)

// Parse reads one circuit from r in the given format and elaborates it
// into a Network. It is the unified ingestion entry point shared by the
// compact and compactd CLIs and the synthesis server; FormatAuto sniffs
// the format from the content, so callers holding a file of unknown
// provenance can pass it straight through:
//
//	nw, err := compact.Parse(f, compact.FormatAuto)
//
// PLA tables carry no model name; Parse names their networks "pla" (use
// ParsePLA to control the name). The format-specific ParseBLIF, ParsePLA
// and ParseVerilog entry points remain as thin wrappers but new code
// should prefer Parse.
func Parse(r io.Reader, format Format) (*Network, error) {
	return parse.Parse(r, format)
}

// ParseFile opens and parses a circuit file, picking the format from the
// extension (.blif, .pla, .v) and falling back to content sniffing; the
// base name becomes the model name for formats that need one.
func ParseFile(path string) (*Network, error) { return parse.ParseFile(path) }

// ParseBLIF reads a combinational BLIF model.
//
// It is a thin wrapper over Parse(r, FormatBLIF), kept for compatibility;
// new code should prefer Parse.
func ParseBLIF(r io.Reader) (*Network, error) { return parse.Parse(r, parse.BLIF) }

// WriteBLIF serializes a network as BLIF.
func WriteBLIF(w io.Writer, nw *Network) error { return blif.Write(w, nw) }

// ParseVerilog reads a gate-level structural Verilog module.
//
// It is a thin wrapper over Parse(r, FormatVerilog), kept for
// compatibility; new code should prefer Parse.
func ParseVerilog(r io.Reader) (*Network, error) { return parse.Parse(r, parse.Verilog) }

// ParsePLA reads a Berkeley PLA table and elaborates it into a network
// with the given name.
//
// It is a thin wrapper over parse.ParseNamed(r, FormatPLA, name), kept for
// compatibility and for callers that must control the model name; new
// code should prefer Parse.
func ParsePLA(r io.Reader, name string) (*Network, error) {
	return parse.ParseNamed(r, parse.PLA, name)
}

// Benchmark builds one of the bundled benchmark circuits by name (the
// paper's Table I suite); see BenchmarkNames.
func Benchmark(name string) (*Network, bool) {
	g, ok := bench.ByName(name)
	if !ok {
		return nil, false
	}
	return g.Build(), true
}

// BenchmarkNames lists the bundled benchmark circuits.
func BenchmarkNames() []string { return bench.Names() }

// DefaultDeviceModel returns the baseline memristor parameters for
// electrical validation; HighContrastDeviceModel suits large arrays.
func DefaultDeviceModel() DeviceModel { return spice.Default() }

// HighContrastDeviceModel returns HfO2-class device parameters with a 10^5
// on/off ratio.
func HighContrastDeviceModel() DeviceModel { return spice.HighContrast() }

// FormalVerify proves (for all input assignments) that a design computes
// the same functions as its source network, via the symbolic sneak-path
// closure. See also Result.FormalVerify for synthesized results.
func FormalVerify(d *Design, nw *Network, nodeLimit int) error {
	return xbar.FormalVerify(d, nw, nodeLimit)
}

// SimulateElectrical solves the programmed crossbar's resistive network
// and returns the output voltages for one input assignment.
func SimulateElectrical(d *Design, assignment []bool, model DeviceModel) ([]float64, error) {
	return spice.Simulate(d, assignment, model)
}

#!/bin/sh
# check.sh — the full verification gate for the COMPACT repo.
#
# Runs, in order:
#   1. gofmt       — no unformatted files
#   2. go vet      — stdlib static checks
#   3. build+test  — tier-1: every package compiles and its tests pass
#   4. -race       — internal packages under the race detector (includes
#                    the concurrent Synthesize tests)
#   5. compactlint — the project's own analyzers; any finding fails the gate
#
# Usage: ./check.sh [-short]
#   -short skips the -race pass (the slowest step) for quick local loops.
set -eu

cd "$(dirname "$0")"

short=0
[ "${1:-}" = "-short" ] && short=1

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build + test =="
go build ./...
go test ./...

if [ "$short" -eq 0 ]; then
    echo "== race detector (internal) =="
    go test -race ./internal/...
fi

echo "== compactlint =="
go run ./cmd/compactlint ./...

echo "OK"

#!/bin/sh
# check.sh — the full verification gate for the COMPACT repo.
#
# Runs, in order:
#   1. gofmt       — no unformatted files
#   2. go vet      — stdlib static checks
#   3. build+test  — tier-1: every package compiles and its tests pass
#   4. selfcheck   — boot compactd on a loopback port and smoke-test the
#                    health/benchmark/synthesize endpoints + cache contract
#   5. -race       — internal packages under the race detector (includes
#                    the concurrent Synthesize, defect placement and
#                    compactd server tests)
#   6. fuzz smoke  — a few seconds on each native fuzz target (the three
#                    parser front ends, the design wire decoder, the
#                    layered (FLOW-3D) design wire decoder, the partition
#                    plan decoder, the persistent store's on-disk entry
#                    codec and the spice dense-vs-CG solver cross-check)
#   7. compactlint — the project's own analyzers, including the compactflow
#                    dataflow suite (allocbound, ctxflow, gospawn) and the
#                    staleignore check on //lint:ignore directives; any
#                    finding fails the gate, and so does blowing the 60s
#                    wall-clock budget the suite promises CI
#
# Usage: ./check.sh [-short] [-bench]
#   -short skips the -race pass (the slowest step) for quick local loops.
#   -bench additionally runs the labeling/ILP hot-path benchmarks
#          (results/BENCH_portfolio.json via cmd/benchjson), the
#          word-parallel-verify / revised-simplex / parallel-B&B kernels
#          (results/BENCH_ilp.json, soft-compared against the committed
#          baseline via benchjson -compare — warn-only) and the
#          partitioned-synthesis benchmark (results/BENCH_partition.json
#          via cmd/partitionbench), the FLOW-3D S-vs-K sweep
#          (results/BENCH_3d.json via cmd/flow3dbench; soft-compared
#          against the committed baseline, warn-only), the
#          variation-robustness yield curves
#          (results/BENCH_margin.json via cmd/marginbench — yield and
#          worst-case margin vs sigma vs crossbar size, plus the
#          margin-aware placement delta; soft-compared against the
#          committed baseline, warn-only) and the service-level load
#          harness (results/BENCH_service.json via cmd/compactload —
#          p50/p99, cache hit ratio including the disk tier, achieved
#          RPS; soft-compared against the committed baseline, warn-only).
set -eu

cd "$(dirname "$0")"

short=0
bench=0
for arg in "$@"; do
    case "$arg" in
    -short) short=1 ;;
    -bench) bench=1 ;;
    *)
        echo "usage: ./check.sh [-short] [-bench]" >&2
        exit 2
        ;;
    esac
done

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build + test =="
go build ./...
go test ./...

echo "== compactd selfcheck =="
go run ./cmd/compactd -selfcheck

if [ "$short" -eq 0 ]; then
    echo "== race detector (internal) =="
    go test -race ./internal/...

    echo "== fuzz smoke =="
    go test -fuzz=FuzzParse -fuzztime=5s -run='^$' ./internal/blif/
    go test -fuzz=FuzzParse -fuzztime=5s -run='^$' ./internal/pla/
    go test -fuzz=FuzzParse -fuzztime=5s -run='^$' ./internal/verilog/
    go test -fuzz=FuzzDesignJSON -fuzztime=5s -run='^$' ./internal/xbar/
    go test -fuzz=FuzzDesign3DJSON -fuzztime=5s -run='^$' ./internal/xbar3d/
    go test -fuzz=FuzzEval64VsScalar -fuzztime=5s -run='^$' ./internal/xbar/
    go test -fuzz=FuzzPlanJSON -fuzztime=5s -run='^$' ./internal/partition/
    go test -fuzz=FuzzStoreEntry -fuzztime=5s -run='^$' ./internal/store/
    go test -fuzz=FuzzDenseVsCG -fuzztime=5s -run='^$' ./internal/spice/
fi

echo "== compactlint =="
go run ./cmd/compactlint -budget 60s ./...

if [ "$bench" -eq 1 ]; then
    echo "== benchmarks (labeling/ILP hot paths) =="
    mkdir -p results
    go test -run='^$' -bench=. -benchmem -benchtime=1x \
        ./internal/labeling ./internal/ilp |
        tee /dev/stderr |
        go run ./cmd/benchjson >results/BENCH_portfolio.json
    echo "wrote results/BENCH_portfolio.json"

    echo "== benchmarks (word-parallel verify + revised simplex + parallel B&B) =="
    go test -run='^$' -bench='VerifyExhaustive|LPVertexCover|BBVertexCover' \
        -benchmem -benchtime=1x ./internal/xbar ./internal/ilp |
        tee /dev/stderr |
        go run ./cmd/benchjson -compare results/BENCH_ilp.json \
            >results/BENCH_ilp.json.new
    mv results/BENCH_ilp.json.new results/BENCH_ilp.json
    echo "wrote results/BENCH_ilp.json"

    echo "== benchmarks (partitioned multi-crossbar synthesis) =="
    go run ./cmd/partitionbench -timelimit 10s -out results/BENCH_partition.json

    echo "== benchmarks (FLOW-3D: semiperimeter vs wire-layer count K) =="
    go run ./cmd/flow3dbench -timelimit 10s \
        -compare results/BENCH_3d.json \
        -out results/BENCH_3d.json.new
    mv results/BENCH_3d.json.new results/BENCH_3d.json
    echo "wrote results/BENCH_3d.json"

    echo "== benchmarks (variation robustness: yield curves + margin-aware placement) =="
    go run ./cmd/marginbench -timelimit 10s \
        -compare results/BENCH_margin.json \
        -out results/BENCH_margin.json.new
    mv results/BENCH_margin.json.new results/BENCH_margin.json
    echo "wrote results/BENCH_margin.json"

    echo "== service load (compactd: sync + async, both cache tiers) =="
    loadstore=$(mktemp -d)
    go run ./cmd/compactload -duration 5s -rps 100 -store-dir "$loadstore" \
        -compare results/BENCH_service.json \
        -out results/BENCH_service.json.new
    rm -rf "$loadstore"
    mv results/BENCH_service.json.new results/BENCH_service.json
    echo "wrote results/BENCH_service.json"
fi

echo "OK"
